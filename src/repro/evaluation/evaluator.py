"""The WorkloadEvaluator: the single costing backplane of the designer.

The paper's headline claim is that INUM-style plan caching makes what-if
evaluation cheap enough to explore thousands of configurations
interactively.  The seed honored the claim per component: CoPhy, the
interaction analyzer, COLT and the partition advisor each owned an
:class:`~repro.inum.InumCostModel` and queried it one query and one
configuration at a time.  This module centralizes costing:

* one **shared cache pool** (:class:`~repro.evaluation.pool.InumCachePool`)
  keyed by canonical query signatures, so components — and alias-renamed
  queries across workloads — share INUM plan caches instead of
  rebuilding them, with LRU bounding and exact hit/miss statistics;

* a **vectorized evaluate phase**: :meth:`WorkloadEvaluator.evaluate_many`
  prices the whole workload × configuration grid on the columnar
  plan-term kernel (:mod:`repro.evaluation.kernel`) — statement kernels
  compiled once per pool entry, fused into flat numpy arrays, slot
  costs resolved once per distinct per-table design — while
  :meth:`WorkloadEvaluator.evaluate_configurations` with
  ``kernel=False`` keeps the scalar reference loop (per-slot /
  per-statement dict memoization, optional ``concurrent.futures``
  fan-out across queries), pinned bit-identical to the kernel;

* the **exact-optimizer path** the what-if session needs: a per
  configuration :class:`~repro.optimizer.CostService` cache
  (:meth:`exact_service`), so "precise but slow" and "cached and fast"
  costing share one backplane and one accounting surface.

The evaluator *is* an :class:`InumCostModel` (drop-in for every seed
consumer); single-query evaluation semantics are inherited unchanged,
which is what the equivalence test suite pins.
"""

import math
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.evaluation.pool import InumCachePool
from repro.evaluation.signature import statement_key
from repro.inum.cache import InumCostModel, _DesignView, build_cache
from repro.optimizer import CostService
from repro.sql.binder import BoundWrite
from repro.util import workload_pairs
from repro.whatif import Configuration

__all__ = ["BatchEvaluation", "WorkloadEvaluator"]

_MISS = object()  # memo sentinel: None is a valid (infeasible) slot cost


@dataclass
class BatchEvaluation:
    """Costs of a workload under a batch of configurations."""

    configurations: list
    weights: list  # one weight per workload statement
    matrix: list  # matrix[c][s]: unweighted cost of statement s under config c

    @property
    def totals(self):
        """Weighted workload cost per configuration."""
        return [
            sum(w * c for w, c in zip(self.weights, row)) for row in self.matrix
        ]

    def best(self):
        """(configuration, total) with the lowest workload cost."""
        totals = self.totals
        pos = min(range(len(totals)), key=totals.__getitem__)
        return self.configurations[pos], totals[pos]


@dataclass
class _CompiledStatement:
    weight: float
    write: object = None  # BoundWrite for write statements
    plans: tuple = ()  # ((internal_cost, (slot_id, ...)), ...) for reads
    sql: str = ""
    signature: object = None  # canonical signature (reads only)
    tables: tuple = ()  # table names whose design affects this statement


@dataclass
class _CompiledWorkload:
    statements: list = field(default_factory=list)
    slots: list = field(default_factory=list)  # slot_id -> (slot, bound_query)
    tables: tuple = ()  # table names any slot touches
    signatures: frozenset = frozenset()  # read-statement signatures used


@dataclass
class _KernelWorkload:
    """A workload compiled onto the columnar kernel: per-position
    weights plus either a write statement or the index of the distinct
    read block inside the fused :class:`~repro.evaluation.kernel.WorkloadKernel`."""

    positions: list = field(default_factory=list)  # (weight, sql, write, read)
    kernel: object = None  # WorkloadKernel
    signatures: frozenset = frozenset()  # read-statement signatures used


_MAX_COMPILED = 16  # compiled-workload memo entries kept (LRU), both flavors
_MAX_EXACT_SERVICES = 128  # per-config CostService cache bound (LRU)


class WorkloadEvaluator(InumCostModel):
    """Batched, pool-backed INUM evaluation plus exact what-if services.

    ``pool`` may be shared between evaluators over the same catalog and
    settings (e.g. one pool per deployment, one evaluator per session).
    ``parallel`` turns on thread fan-out across queries in batched
    evaluation by default; results are bit-identical either way.
    """

    def __init__(self, catalog, settings=None, pool=None, parallel=False,
                 max_workers=None, use_kernel=True):
        super().__init__(catalog, settings)
        self.pool = pool if pool is not None else InumCachePool()
        self.pool.attach(self.catalog, self.settings)
        self.pool.subscribe(self._forget)
        self.parallel = parallel
        self.max_workers = max_workers
        # Batched pricing runs on the columnar kernel by default; the
        # scalar loop survives as the pinned reference (kernel=False).
        self.use_kernel = use_kernel
        self._signatures = {}  # statement sql -> canonical signature
        # signature -> {touched-table designs -> cost}; sharded like
        # _slot_costs so eviction drops one bucket, not a dict rebuild.
        self._stmt_costs = {}
        self._compiled = OrderedDict()  # workload key -> _CompiledWorkload
        # signature -> set of _compiled keys referencing it, so _forget
        # drops dependents without scanning the memo.  Guarded by
        # self._lock together with _compiled itself.
        self._compiled_by_sig = {}
        # Configuration -> CostService, LRU-bounded (each service holds a
        # full catalog clone); the empty-config base service is pinned.
        self._exact_services = OrderedDict()
        # Guards the exact-service LRU and clear_caches; cache builds are
        # serialized per entry by the pool's own single-flight instead.
        self._lock = threading.RLock()
        # (registry, {mode: bound metric handles}) — rebuilt whenever the
        # active registry changes (obs.reset()/obs.disabled()), so the
        # per-batch telemetry is three bound calls, not three family
        # lookups.
        self._obs_handles = (None, {})

    # ------------------------------------------------------------------
    # Pool-backed cache management.
    # ------------------------------------------------------------------

    def signature(self, query):
        """Canonical signature of *query* (memoized by SQL text)."""
        bq = self.bound(query)
        sig = self._signatures.get(bq.sql)
        if sig is None:
            sig = statement_key(bq)
            self._signatures[bq.sql] = sig
        return sig

    def cache_for(self, query):
        bq = self.bound(query)
        sig = self.signature(bq)
        # Single-flight lives in the pool: concurrent evaluators (and
        # warm-up threads) probing the same signature share one build,
        # and builds of *different* signatures proceed concurrently.
        # put() inside broadcasts evictions to every subscribed
        # evaluator's _forget, this one included.
        return self.pool.get_or_build(
            sig, lambda: build_cache(bq, self.catalog, self.settings)
        )

    def _forget(self, signature, cache):
        """Drop memo entries derived from an evicted cache, so a bounded
        pool bounds the memos too (not just the resident plan caches).

        O(1) per eviction: the slot/statement memos are sharded by
        owning query (one ``pop`` drops the whole bucket — a parallel
        worker holding a popped bucket merely writes lost, benign,
        entries into it), and compiled workloads are indexed by
        contained signature, so dependents are popped directly instead
        of scanning the memo.  Dropping a compiled workload also drops
        its fused kernel and therefore every delta state captured on it.

        Called with the pool lock held; the evaluator lock nests inside
        it (pool → evaluator is the one sanctioned order).
        """
        self._slot_costs.pop(cache.bound_query.sql, None)
        self._slot_choices.pop(cache.bound_query.sql, None)
        self._stmt_costs.pop(signature, None)
        with self._lock:
            for key in self._compiled_by_sig.pop(signature, ()):
                compiled = self._compiled.pop(key, None)
                if compiled is not None:
                    self._unindex(key, compiled)

    def _unindex(self, key, compiled):
        """Remove *key* from the signature index (callers hold the lock)."""
        for sig in compiled.signatures:
            bucket = self._compiled_by_sig.get(sig)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._compiled_by_sig[sig]

    def clear_caches(self):
        """Empty the pool, every memo derived from it, and the exact
        per-configuration services (each holds a catalog clone) in one
        stroke — the memory-reclaim hook for long-lived evaluators.  The
        pinned base service survives, so sessions holding it stay valid.
        """
        # Pool first, and *outside* our lock: clear() broadcasts drops to
        # _forget, which takes our lock while the pool lock is held —
        # holding ours across the call would invert the pool → evaluator
        # lock order every eviction establishes.
        self.pool.clear()
        with self._lock:
            self._slot_costs.clear()
            self._slot_choices.clear()
            self._stmt_costs.clear()
            self._compiled.clear()
            self._compiled_by_sig.clear()
            # Statement-level memos too: signature tuples and bound ASTs
            # accumulate per distinct SQL text, not per resident cache.
            self._signatures.clear()
            self._bound_cache.clear()
            base = self._exact_services.get(Configuration.empty())
            self._exact_services.clear()
            if base is not None:
                self._exact_services[Configuration.empty()] = base

    def warm_targets(self, workload):
        """The deduplicated statements a warm-up must build, as
        ``(bound_query, source_sql, locate)`` triples.

        Write statements contribute their locate query (pure inserts
        contribute nothing); ``source_sql`` is the statement's original
        parseable text and ``locate`` marks the rewrite — what the
        process backplane ships to workers, since locate SQL itself is
        synthetic.  Shared by the threaded and process warm-up paths so
        their pinned equivalence cannot drift.

        Dedup is by canonical signature, not SQL text: alias-renamed
        duplicates share one cache entry, so shipping both to worker
        processes would pay the full build twice for one installable
        result.
        """
        from repro.optimizer.writecost import locate_query

        targets, seen = [], set()
        for query, __ in workload_pairs(workload):
            bq = self.bound(query)
            source, locate = bq.sql, False
            if isinstance(bq, BoundWrite):
                if bq.kind not in ("update", "delete"):
                    continue
                locate = True
                bq = self.bound(locate_query(bq))
            signature = self.signature(bq)
            if signature not in seen:
                seen.add(signature)
                targets.append((bq, source, locate))
        return targets

    def warm_up(self, workload, threads=None):
        """Pre-build the INUM caches for every workload statement, with
        the builds optionally fanned out across *threads* workers.

        Returns the optimizer calls spent, exactly like the sequential
        :meth:`warm` it generalizes.  The delta is read off the shared
        pool's global counter: on a quiet pool it is exactly this call's
        spend; if other evaluators build into the same pool concurrently
        their builds land in the delta too (the work was shared either
        way).  The resulting pool state is bit-identical either way:
        each statement's cache is a pure function of its bound query,
        the pool's single-flight guarantees one build per signature, and
        binding happens up front on the calling thread (which also keeps
        workload iteration single-threaded).  Write statements warm
        their locate query.
        """
        before = self.precompute_calls
        targets = [bq for bq, __, __ in self.warm_targets(workload)]
        with obs.tracer().span("evaluator.warm_up",
                               statements=len(targets),
                               threads=threads or 1):
            if threads is not None and threads > 1 and len(targets) > 1:
                with ThreadPoolExecutor(max_workers=threads) as executor:
                    # list() propagates the first worker exception, if any.
                    list(executor.map(self.cache_for, targets))
            else:
                for bq in targets:
                    self.cache_for(bq)
            # Prewarm the compiled columnar kernels too: warm-up's contract
            # is "the first evaluate pays no build work", and the kernel is
            # part of that derived state (compiled once per resident entry,
            # owned by the pool, dropped with it on eviction).
            for bq in targets:
                self.pool.kernel_for(self.signature(bq))
        return self.precompute_calls - before

    @property
    def precompute_calls(self):
        return self.pool.stats.optimizer_calls

    @property
    def stats(self):
        """One merged statistics surface: pool + evaluation accounting.

        Pool counters are lock-exact.  ``evaluations`` is exact for
        batched calls; concurrent *per-call* costing from tenant threads
        may undercount it (unsynchronized increments on the inherited
        hot path) — treat it as advisory on a shared backplane.
        """
        merged = self.pool.stats.as_dict()
        merged.update(
            pool_size=len(self.pool),
            evaluations=self.evaluations,
            exact_optimizer_calls=self.exact_optimizer_calls,
        )
        return merged

    # ------------------------------------------------------------------
    # Batched (vectorized) evaluation.
    # ------------------------------------------------------------------

    def _compile(self, workload, kernel=False):
        """Flatten a workload into plan terms over deduplicated slots.

        Two flavors share one LRU memo: the scalar reference
        compilation (plan terms over slot-id tuples, priced by Python
        loops) and the columnar ``kernel`` compilation (statement
        kernels fused over a global slot table, priced by numpy
        reductions).  Compiled workloads are memoized, so repeated
        sweeps over the same workload — the interaction analyzer prices
        one batch per index pair — skip straight to the evaluate phase.
        Entries referencing an evicted cache are dropped by
        :meth:`_forget`, never served stale.
        """
        # Materialize once: workloads may be one-shot iterators, and the
        # memo key must be derived from the same pass that compiles.
        pairs = [(self.bound(q), w) for q, w in workload_pairs(workload)]
        key = (
            "kernel" if kernel else "scalar",
            tuple((bq.sql, w) for bq, w in pairs),
        )
        with self._lock:
            compiled = self._compiled.get(key)
            if compiled is not None:
                self._compiled.move_to_end(key)
                return compiled
        # Build outside the lock (compilation may issue optimizer calls
        # through the pool); concurrent builders of the same workload
        # each produce an equivalent object and the last insert wins.
        if kernel:
            compiled = self._compile_kernel_fresh(pairs)
        else:
            compiled = self._compile_fresh(pairs)
        with self._lock:
            # Memoize only while every underlying cache is still
            # resident: an entry evicted mid-build must not resurrect a
            # compiled workload _forget already swept (the object itself
            # stays valid for this call — eviction is a memory policy,
            # not invalidation).
            if all(sig in self.pool for sig in compiled.signatures):
                self._compiled[key] = compiled
                for sig in compiled.signatures:
                    self._compiled_by_sig.setdefault(sig, set()).add(key)
                while len(self._compiled) > _MAX_COMPILED:
                    old_key, old = self._compiled.popitem(last=False)
                    self._unindex(old_key, old)
        return compiled

    def _compile_fresh(self, pairs):
        compiled = _CompiledWorkload()
        slot_ids = {}
        tables = set()
        for bq, weight in pairs:
            if isinstance(bq, BoundWrite):
                compiled.statements.append(
                    _CompiledStatement(weight=weight, write=bq, sql=bq.sql)
                )
                tables.add(bq.table.name)
                if bq.kind in ("update", "delete"):
                    # Warm the locate cache now so the evaluate phase
                    # issues zero optimizer calls even for writes.
                    from repro.optimizer.writecost import locate_query

                    self.cache_for(locate_query(bq))
                continue
            cache = self.cache_for(bq)
            cbq = cache.bound_query
            plans = []
            touched = set()
            for internal_cost, slots in cache.plan_terms():
                ids = []
                for slot in slots:
                    key = (cbq.sql, slot)
                    sid = slot_ids.get(key)
                    if sid is None:
                        sid = len(compiled.slots)
                        slot_ids[key] = sid
                        compiled.slots.append((slot, cbq))
                        tables.add(slot.table_name)
                    ids.append(sid)
                    touched.add(slot.table_name)
                plans.append((internal_cost, tuple(ids)))
            compiled.statements.append(
                _CompiledStatement(
                    weight=weight,
                    plans=tuple(plans),
                    sql=bq.sql,
                    signature=self.signature(bq),
                    tables=tuple(sorted(touched)),
                )
            )
        compiled.tables = tuple(sorted(tables))
        compiled.signatures = frozenset(
            stmt.signature
            for stmt in compiled.statements
            if stmt.write is None
        )
        return compiled

    def _compile_kernel_fresh(self, pairs):
        """Compile a workload onto the columnar kernel: per-statement
        kernels come from the pool (compiled once per resident entry,
        shared across evaluators) and fuse into one
        :class:`~repro.evaluation.kernel.WorkloadKernel` over a global
        slot table — replacing the scalar compile's per-slot dict
        memoization with array-column lookups."""
        from repro.evaluation.kernel import WorkloadKernel, compile_statement

        fused = WorkloadKernel()
        compiled = _KernelWorkload(kernel=fused)
        signatures = set()
        for bq, weight in pairs:
            if isinstance(bq, BoundWrite):
                compiled.positions.append((weight, bq.sql, bq, None))
                if bq.kind in ("update", "delete"):
                    # Warm the locate cache now so the evaluate phase
                    # issues zero optimizer calls even for writes.
                    from repro.optimizer.writecost import locate_query

                    self.cache_for(locate_query(bq))
                continue
            cache = self.cache_for(bq)
            signature = self.signature(bq)
            stmt_kernel = self.pool.kernel_for(signature)
            if stmt_kernel is None:  # evicted between calls: compile inline
                stmt_kernel = compile_statement(cache)
            read = fused.add_statement(stmt_kernel)
            signatures.add(signature)
            compiled.positions.append((weight, bq.sql, None, read))
        fused.seal()
        compiled.signatures = frozenset(signatures)
        return compiled

    def evaluate_many(self, workload, configurations, sparse=False):
        """Price the whole workload × configuration grid on the
        columnar kernel (:mod:`repro.evaluation.kernel`): one
        ``configurations × slots`` access-cost matrix, per-statement
        numpy reductions, results bit-identical to the scalar batched
        path and the per-call :meth:`cost`.  This is the batch seam
        CoPhy sweeps, COLT epoch scoring, and doi prefetch route
        through.

        ``sparse=True`` skips the dense matrix entirely: each
        configuration resolves per-table column blocks on demand
        against the shared base-design state, so memory and resolve
        work scale with the configuration's active footprint.  Results
        stay bit-identical (dense remains the pinned reference, same
        pattern as ``kernel=False``)."""
        return self.evaluate_configurations(workload, configurations,
                                            kernel=True, sparse=sparse)

    def _base_view(self):
        """The design view of the empty configuration — the shared base
        design sparse kernel passes diff against."""
        return _DesignView(self.catalog, Configuration.empty())

    def _observe_sparse(self, fused, cells_before, dense_before):
        """Record one sparse pass's column work: slot cells actually
        materialized vs. the dense-equivalent count the full matrix
        would have resolved."""
        registry = obs.metrics()
        registry.counter(
            "repro_sparse_cells_total",
            "Slot cells materialized by sparse kernel passes",
        ).inc(fused.sparse_cells - cells_before)
        registry.counter(
            "repro_sparse_dense_equiv_cells_total",
            "Slot cells an equivalent dense pass would have resolved",
        ).inc(fused.dense_equiv_cells - dense_before)

    def _kernel_views(self, compiled, configurations):
        """Per-configuration design views and per-table signatures for
        the fused kernel's tables."""
        views = [_DesignView(self.catalog, c) for c in configurations]
        table_sigs = [
            {
                name: view.design_signature(name)
                for name in compiled.kernel.tables
            }
            for view in views
        ]
        return views, table_sigs

    def _kernel_state(self, compiled, parent):
        """The parent configuration's captured (memoized) delta state."""
        parent_view = _DesignView(self.catalog, parent)
        parent_sigs = {
            name: parent_view.design_signature(name)
            for name in compiled.kernel.tables
        }
        return compiled.kernel.delta_state(
            parent_view, parent_sigs, self.slot_cost
        )

    def _assemble_batch(self, compiled, configurations, views, reads):
        """Fold the kernel's read grid plus scalar write costs into a
        :class:`BatchEvaluation` (shared by the full and delta paths)."""
        n_configs = len(views)
        out = np.empty((n_configs, len(compiled.positions)), dtype=np.float64)
        for s, (weight, __, write, read) in enumerate(compiled.positions):
            if write is None:
                out[:, s] = reads[read]
            else:
                out[:, s] = [
                    self._write_cost(write, views[pos], configurations[pos])
                    for pos in range(n_configs)
                ]
        with self._lock:  # exact even when tenant threads batch at once
            self.evaluations += len(compiled.positions) * n_configs
        # ndarray.tolist() yields the exact same Python floats the
        # scalar path produces — float64 round-trips losslessly.
        matrix = out.tolist()
        return BatchEvaluation(
            configurations=list(configurations),
            weights=[weight for weight, __, __, __ in compiled.positions],
            matrix=matrix,
        )

    def _observe_batch(self, mode, elapsed, statements, configurations):
        """One batched evaluate call's telemetry: latency histogram plus
        batch/cell counters, all labeled by pricing mode.  Bound handles
        are cached per (registry, mode) so the steady-state cost is three
        method calls; the cache keys on registry identity so a swap via
        ``obs.reset()``/``obs.disabled()`` takes effect immediately."""
        registry = obs.metrics()
        cached_registry, by_mode = self._obs_handles
        if cached_registry is not registry:
            by_mode = {}
            self._obs_handles = (registry, by_mode)
        handles = by_mode.get(mode)
        if handles is None:
            handles = (
                registry.counter(
                    "repro_evaluate_batches_total",
                    "Batched evaluate calls",
                    labelnames=("mode",),
                ).labels(mode=mode),
                registry.counter(
                    "repro_evaluate_cells_total",
                    "Workload-cost cells priced by batched evaluation",
                    labelnames=("mode",),
                ).labels(mode=mode),
                registry.histogram(
                    "repro_evaluate_seconds",
                    "Batched evaluate latency",
                    labelnames=("mode",),
                ).labels(mode=mode),
            )
            by_mode[mode] = handles
        batches, cells, seconds = handles
        batches.inc()
        cells.inc(statements * configurations)
        seconds.observe(elapsed)

    def _evaluate_kernel(self, compiled, configurations, sparse=False):
        """The kernel evaluate phase: views and per-table design
        signatures once per configuration, then pure array arithmetic
        (plus the scalar write path — writes are few and analytic)."""
        views, table_sigs = self._kernel_views(compiled, configurations)
        fused = compiled.kernel
        if sparse:
            cells, dense = fused.sparse_cells, fused.dense_equiv_cells
            reads = fused.evaluate_many(
                views, table_sigs, self.slot_cost,
                sparse=True, base_view=self._base_view(),
            )
            self._observe_sparse(fused, cells, dense)
        else:
            reads = fused.evaluate_many(views, table_sigs, self.slot_cost)
        return self._assemble_batch(compiled, configurations, views, reads)

    def evaluate_deltas(self, workload, parent, configurations,
                        sparse=False):
        """Price *configurations* as single-design deltas off *parent*.

        The seminaïve seam greedy rounds, COLT epoch scoring, and IBG
        level builds route through: the parent's resolved grid state is
        captured once (and memoized on the compiled kernel, dying with
        it on pool eviction), and each child re-resolves only slots on
        tables whose design differs from the parent's — O(delta) per
        child instead of O(grid).  Results are bit-identical to
        :meth:`evaluate_many` on the same arguments, which the
        equivalence suite pins exactly.
        """
        compiled = self._compile(workload, kernel=True)
        configurations = [c or Configuration.empty() for c in configurations]
        parent = parent or Configuration.empty()
        with obs.tracer().span("evaluate.deltas",
                               configurations=len(configurations)):
            t0 = time.perf_counter()
            state = self._kernel_state(compiled, parent)
            views, table_sigs = self._kernel_views(compiled, configurations)
            fused = compiled.kernel
            if sparse:
                cells, dense = fused.sparse_cells, fused.dense_equiv_cells
            reads = fused.evaluate_deltas(
                state, views, table_sigs, self.slot_cost, sparse=sparse
            )
            if sparse:
                self._observe_sparse(fused, cells, dense)
            batch = self._assemble_batch(compiled, configurations, views,
                                         reads)
            self._observe_batch("delta-sparse" if sparse else "delta",
                                time.perf_counter() - t0,
                                len(compiled.positions), len(configurations))
            return batch

    def evaluate_configurations(self, workload, configurations, parallel=None,
                                max_workers=None, kernel=None, sparse=False):
        """Price all *configurations* against all of *workload* in one pass.

        The evaluate phase issues zero optimizer calls (beyond cache
        warm-up for statements seen for the first time) and shares
        pricing at three levels: per-slot access costs (the INUM memo),
        per-statement costs keyed by canonical signature × the design of
        the tables the statement touches, and the per-table design
        signatures themselves, computed once per configuration rather
        than once per slot occurrence.

        ``kernel`` selects the engine: ``True`` prices the grid on the
        columnar kernel (the default, via :attr:`use_kernel`), ``False``
        forces the scalar reference loop.  Results are bit-identical
        either way — the kernel accumulates in scalar order — which
        ``tests/test_kernel.py`` pins exactly.  With ``parallel=True``
        the scalar path fans queries out across threads (the kernel
        path is already vectorized and ignores the flag); the result is
        deterministic and identical in every mode.
        """
        if parallel is None:
            parallel = self.parallel
        if max_workers is None:
            max_workers = self.max_workers
        if kernel is None:
            kernel = self.use_kernel
        configurations = [c or Configuration.empty() for c in configurations]
        if sparse:
            mode = "sparse"
        else:
            mode = "kernel" if kernel else "scalar"
        with obs.tracer().span("evaluate.batch", engine=mode,
                               configurations=len(configurations)):
            t0 = time.perf_counter()
            if kernel:
                compiled = self._compile(workload, kernel=True)
                batch = self._evaluate_kernel(compiled, configurations,
                                              sparse=sparse)
                statements = len(compiled.positions)
            else:
                compiled = self._compile(workload)
                batch = self._evaluate_scalar(compiled, configurations,
                                              parallel, max_workers)
                statements = len(compiled.statements)
            self._observe_batch(mode, time.perf_counter() - t0,
                                statements, len(configurations))
            return batch

    def _evaluate_scalar(self, compiled, configurations, parallel,
                         max_workers):
        """The scalar reference evaluate phase (``kernel=False``):
        per-slot / per-statement dict memoization, optional thread
        fan-out across statements — pinned bit-identical to the kernel."""
        views = [_DesignView(self.catalog, c) for c in configurations]
        table_sigs = [
            {name: view.design_signature(name) for name in compiled.tables}
            for view in views
        ]
        slot_caches = [{} for __ in views]  # slot_id -> cost under view

        def statement_cost(stmt, pos):
            view = views[pos]
            if stmt.write is not None:
                return self._write_cost(stmt.write, view, configurations[pos])
            sigs = table_sigs[pos]
            bucket = self._stmt_costs.get(stmt.signature)
            if bucket is None:
                bucket = self._stmt_costs.setdefault(stmt.signature, {})
            key = tuple(sigs[name] for name in stmt.tables)
            cost = bucket.get(key, _MISS)
            if cost is not _MISS:
                return cost
            slot_costs = slot_caches[pos]
            best = math.inf
            for internal, ids in stmt.plans:
                total = internal
                feasible = True
                for sid in ids:
                    cost = slot_costs.get(sid, _MISS)
                    if cost is _MISS:
                        slot, bq = compiled.slots[sid]
                        cost = self.slot_cost(
                            bq, slot, view,
                            design_signature=sigs[slot.table_name],
                        )
                        slot_costs[sid] = cost
                    if cost is None:
                        feasible = False
                        break
                    total += cost
                if feasible and total < best:
                    best = total
            if not math.isfinite(best):
                raise RuntimeError("INUM cache produced no feasible plan")
            bucket[key] = best
            return best

        def column(stmt):
            return [statement_cost(stmt, pos) for pos in range(len(views))]

        if parallel and len(compiled.statements) > 1:
            with ThreadPoolExecutor(max_workers=max_workers) as executor:
                columns = list(executor.map(column, compiled.statements))
        else:
            columns = [column(stmt) for stmt in compiled.statements]

        with self._lock:  # exact even when tenant threads batch at once
            self.evaluations += len(compiled.statements) * len(configurations)
        matrix = [
            [columns[s][c] for s in range(len(compiled.statements))]
            for c in range(len(configurations))
        ]
        return BatchEvaluation(
            configurations=list(configurations),
            weights=[stmt.weight for stmt in compiled.statements],
            matrix=matrix,
        )

    def workload_costs(self, workload, configurations, parallel=None):
        """Convenience: just the weighted totals, one per configuration."""
        return self.evaluate_configurations(
            workload, configurations, parallel=parallel
        ).totals

    def workload_cost_with_usage_batch(self, workload, configurations,
                                       parent=None, vectorized=None,
                                       sparse=False):
        """Usage-aware evaluation of a batch of configurations.

        This is the seam level-wise IBG builds price their frontiers
        through.  By default it runs as **one vectorized pass** on the
        columnar kernel's argmin-witness mode: costs come from the same
        reductions as :meth:`evaluate_many`, and each statement's used
        set is the winning plan's winning-access indexes (payload
        columns memoized per (table, design) exactly like cost columns)
        intersected with the configuration — bit-identical to the
        serial :meth:`workload_cost_with_usage` walk, which
        ``vectorized=False`` keeps available as the pinned scalar
        reference.  Passing *parent* additionally prices the batch as
        deltas off that configuration (untouched statements inherit
        both minimum and witness from the captured parent state).
        """
        if vectorized is None:
            vectorized = self.use_kernel
        if not vectorized:
            return [
                self.workload_cost_with_usage(workload, config)
                for config in configurations
            ]
        compiled = self._compile(workload, kernel=True)
        configurations = [c or Configuration.empty() for c in configurations]
        t0 = time.perf_counter()
        views, table_sigs = self._kernel_views(compiled, configurations)
        fused = compiled.kernel
        if sparse:
            cells, dense = fused.sparse_cells, fused.dense_equiv_cells
        if parent is not None:
            state = self._kernel_state(compiled, parent)
            reads, witnesses = fused.evaluate_deltas_with_usage(
                state, views, table_sigs, self.slot_cost, self.slot_choice,
                sparse=sparse,
            )
        else:
            reads, witnesses = fused.evaluate_many_with_usage(
                views, table_sigs, self.slot_cost, self.slot_choice,
                sparse=sparse, base_view=self._base_view() if sparse else None,
            )
        if sparse:
            self._observe_sparse(fused, cells, dense)
        results = []
        for c, config in enumerate(configurations):
            # Same accumulation the serial walk runs: weighted costs in
            # workload order onto 0.0, used sets unioned per statement.
            total = 0.0
            used = set()
            for weight, __, write, read in compiled.positions:
                if write is None:
                    cost = float(reads[read][c])
                    stmt_used = frozenset(
                        index for index in witnesses[read][c]
                        if index in config.indexes
                    )
                else:
                    cost, stmt_used = self._write_usage(
                        write, views[c], config
                    )
                total += weight * cost
                used |= stmt_used
            results.append((total, frozenset(used)))
        with self._lock:  # exact even when tenant threads batch at once
            self.evaluations += len(compiled.positions) * len(configurations)
        self._observe_batch("usage-sparse" if sparse else "usage",
                            time.perf_counter() - t0,
                            len(compiled.positions), len(configurations))
        return results

    def _write_usage(self, bound_write, view, config):
        """Cost and used-index set of one write statement — the same
        expressions :meth:`~repro.inum.cache.InumCostModel.cost_with_usage`
        runs on its write branch (maintained indexes plus the locate
        query's own usage)."""
        from repro.optimizer.writecost import locate_query

        cost = self._write_cost(bound_write, view, config)
        used = frozenset(
            ix for ix in config.indexes if bound_write.touches_index(ix)
        )
        if bound_write.kind in ("update", "delete"):
            __, locate_used = self.cost_with_usage(
                locate_query(bound_write), config
            )
            used |= locate_used
        return cost, used

    # ------------------------------------------------------------------
    # The exact-optimizer side of the backplane (what-if sessions).
    # ------------------------------------------------------------------

    def exact_service(self, config=None):
        """A :class:`CostService` seeing *config* overlaid on the catalog.

        Services are cached per configuration and share one optimizer
        call counter and bind cache, exactly like the seed's
        :class:`WhatIfSession` did — the session now borrows them from
        here so every component draws costs from one place.

        Locked: tenant sessions sharing one backplane evaluator probe
        this cache from their own threads, and the LRU mutates on every
        lookup.
        """
        config = config or Configuration.empty()
        with self._lock:
            svc = self._exact_services.get(config)
            if svc is not None:
                self._exact_services.move_to_end(config)
                return svc
            base = self._exact_services.get(Configuration.empty())
            if base is None:
                base = CostService(self.catalog, self.settings)
                self._exact_services[Configuration.empty()] = base
            if config.is_empty:
                return base
            svc = base.with_catalog(config.apply(self.catalog))
            self._exact_services[config] = svc
            while len(self._exact_services) > _MAX_EXACT_SERVICES:
                oldest = next(iter(self._exact_services))
                if oldest.is_empty:  # never evict the pinned base service
                    self._exact_services.move_to_end(oldest)
                    continue
                del self._exact_services[oldest]
            return svc

    def exact_cost(self, query, config=None):
        """Full-optimizer cost of *query* under *config* (precise path)."""
        return self.exact_service(config).cost(query)

    @property
    def exact_optimizer_calls(self):
        # Locked: every exact_service lookup mutates the LRU
        # (move_to_end/evict) from tenant threads, and an unlocked get
        # races the dict reshuffle.
        with self._lock:
            base = self._exact_services.get(Configuration.empty())
        return base.optimizer_calls if base is not None else 0

