"""Canonical plan/query signatures for the shared INUM cache pool.

Two queries that differ only in table alias spelling (``photoobj p`` vs
``photoobj px``) produce identical optimizer plans, identical INUM plan
caches, and identical configuration costs — so they should share one
cache entry.  :func:`query_signature` computes a hashable fingerprint of
a :class:`~repro.sql.binder.BoundQuery` that is invariant under alias
renaming but captures *every* cost-relevant feature: tables, filter
predicates (including constants — they drive selectivity), join
structure, referenced-column sets, grouping, ordering, aggregates and
LIMIT.

Aliases are canonicalized structurally: each alias gets a *local*
descriptor (its table, its filters, its referenced columns, its join
endpoints described by table rather than alias); aliases are then
renumbered in sorted-descriptor order.  Aliases with identical local
descriptors are interchangeable by symmetry, so any tie-break yields the
same costs.

Known limitation: ties between identical local descriptors are broken by
input order, so exotic renamings that *rewire* symmetric self-join pairs
to differently-filtered third tables can land in separate cache entries.
Costs remain correct either way — the miss only forfeits sharing.
"""

from repro.sql.astnodes import ColumnRef

__all__ = ["query_signature", "statement_key"]


def _filter_sig(f):
    """Alias-free fingerprint of one bound filter (constants included)."""
    return (
        f.column,
        f.kind,
        f.value,
        f.low,
        f.high,
        f.low_inclusive,
        f.high_inclusive,
        tuple(f.values or ()),
    )


def _aggregate_sig(agg, alias_rank):
    arg = agg.arg
    if isinstance(arg, ColumnRef) and arg.table:
        arg_sig = (alias_rank.get(arg.table, -1), arg.column)
    else:
        arg_sig = ("*",)
    return (agg.name.upper(), arg_sig, bool(getattr(agg, "distinct", False)))


def _local_descriptor(bq, alias):
    """What one table reference looks like, described without alias names."""
    table = bq.table_for(alias)
    joins = []
    for clause in bq.joins_for(alias):
        column, other_alias, other_column = clause.side_for(alias)
        joins.append((column, bq.table_for(other_alias).name, other_column))
    return (
        table.name,
        tuple(sorted(_filter_sig(f) for f in bq.filters_for(alias))),
        tuple(sorted(bq.referenced_columns(alias))),
        tuple(sorted(joins)),
        tuple(sorted(c for a, c in bq.group_by if a == alias)),
        tuple(sorted((c, asc) for a, c, asc in bq.order_by if a == alias)),
    )


def query_signature(bq):
    """A hashable, alias-invariant signature of a bound SELECT query."""
    descriptors = {alias: _local_descriptor(bq, alias) for alias in bq.aliases}
    ordered = sorted(bq.aliases, key=lambda a: descriptors[a])
    rank = {alias: i for i, alias in enumerate(ordered)}

    joins = []
    for j in bq.joins:
        left = (rank[j.left_alias], j.left_column)
        right = (rank[j.right_alias], j.right_column)
        joins.append(tuple(sorted((left, right))))

    return (
        tuple(descriptors[a] for a in ordered),
        tuple(sorted(joins)),
        tuple(sorted((rank[a], c) for a, c in bq.select_columns)),
        tuple(sorted(_aggregate_sig(agg, rank) for agg in bq.aggregates)),
        tuple(sorted((rank[a], c) for a, c in bq.group_by)),
        # ORDER BY is positional: keep clause order, canonicalize aliases.
        tuple((rank[a], c, asc) for a, c, asc in bq.order_by),
        bq.limit,
        bq.has_star,
    )


def statement_key(bq):
    """Signature for any bound statement: writes fall back to SQL text
    (write costs are analytic, not cached, so sharing buys nothing)."""
    if bq.is_write:
        return ("write", bq.sql)
    return query_signature(bq)
