"""AutoPart: automatic partition suggestion (paper §3.3, reference [8]).

AutoPart designs vertical and horizontal partitions for large scientific
tables.  Following the reference algorithm:

1. **primary fragments** — attributes grouped by identical query-access
   signature (columns always read together end up together),
2. **pairwise merging** — fragments are greedily merged while the
   estimated workload cost improves (merging trades wider scans for fewer
   row-id stitches),
3. **replication** — within a storage budget, hot column groups may be
   duplicated into composite fragments to serve queries that would
   otherwise span fragments,
4. **horizontal range partitioning** — a partitioning column and bounds
   are proposed where predicates allow partition pruning.

Costs come from the INUM-extended cost model, which the paper extends "to
include partitions".
"""

from repro.autopart.advisor import AutoPartAdvisor, PartitionRecommendation
from repro.autopart.rewrite import rewrite_for_layout

__all__ = ["AutoPartAdvisor", "PartitionRecommendation", "rewrite_for_layout"]
