"""Query rewriting onto partitioned layouts.

The demo lets the user "save the rewritten queries for the new table
partitions": each table reference is replaced by the fragment tables that
cover the query's columns, stitched on the implicit row id.  The output is
display-oriented SQL for the DBA (our dialect itself plans fragments
natively through the catalog, so these strings are documentation of the
physical plan, exactly as in the demo UI).
"""

from repro.sql.binder import bind_sql


def rewrite_for_layout(sql, catalog, layouts):
    """Rewrite *sql* against fragment tables.

    ``layouts`` maps table name -> :class:`VerticalLayout`.  Tables without
    a layout are left untouched.  Returns the rewritten SQL text.
    """
    bq = bind_sql(sql, catalog)
    from_parts = []
    stitch_preds = []
    rename = {}  # (alias, column) -> fragment alias

    for alias in bq.aliases:
        table = bq.table_for(alias)
        layout = layouts.get(table.name)
        if layout is None:
            from_parts.append(
                table.name if alias == table.name else "%s %s" % (table.name, alias)
            )
            continue
        needed = sorted(bq.referenced_columns(alias)) or [table.column_names[0]]
        fragments = layout.fragments_for(needed)
        frag_aliases = []
        for k, frag in enumerate(fragments):
            frag_alias = "%s_f%d" % (alias, k)
            frag_aliases.append(frag_alias)
            from_parts.append("%s %s" % (frag.name, frag_alias))
            for col in frag.columns:
                rename.setdefault((alias, col), frag_alias)
        for prev, cur in zip(frag_aliases, frag_aliases[1:]):
            stitch_preds.append("%s.rid = %s.rid" % (prev, cur))

    def col_text(alias, column):
        owner = rename.get((alias, column), alias)
        return "%s.%s" % (owner, column)

    select_parts = []
    for alias, column in bq.select_columns:
        select_parts.append(col_text(alias, column))
    for agg in bq.aggregates:
        if hasattr(agg.arg, "column") and agg.arg.table:
            inner = col_text(agg.arg.table, agg.arg.column)
        else:
            inner = "*"
        select_parts.append("%s(%s)" % (agg.name.upper(), inner))
    if bq.has_star:
        select_parts.append("*")

    where_parts = list(stitch_preds)
    for alias in bq.aliases:
        for f in bq.filters_for(alias):
            where_parts.append(_filter_text(f, col_text))
    for join in bq.joins:
        where_parts.append(
            "%s = %s"
            % (
                col_text(join.left_alias, join.left_column),
                col_text(join.right_alias, join.right_column),
            )
        )

    sql_out = "SELECT %s FROM %s" % (
        ", ".join(select_parts) or "*",
        ", ".join(from_parts),
    )
    if where_parts:
        sql_out += " WHERE " + " AND ".join(where_parts)
    if bq.group_by:
        sql_out += " GROUP BY " + ", ".join(col_text(a, c) for a, c in bq.group_by)
    if bq.order_by:
        sql_out += " ORDER BY " + ", ".join(
            col_text(a, c) + ("" if asc else " DESC") for a, c, asc in bq.order_by
        )
    if bq.limit is not None:
        sql_out += " LIMIT %d" % bq.limit
    return sql_out


def _quote(value):
    if isinstance(value, str):
        return "'%s'" % value.replace("'", "''")
    return repr(value)


def _filter_text(f, col_text):
    col = col_text(f.alias, f.column)
    if f.kind == "eq":
        return "%s = %s" % (col, _quote(f.value))
    if f.kind == "ne":
        return "%s <> %s" % (col, _quote(f.value))
    if f.kind == "in":
        return "%s IN (%s)" % (col, ", ".join(_quote(v) for v in f.values))
    if f.kind == "isnull":
        return "%s IS NULL" % col
    if f.kind == "notnull":
        return "%s IS NOT NULL" % col
    parts = []
    if f.low is not None:
        parts.append("%s %s %s" % (col, ">=" if f.low_inclusive else ">", _quote(f.low)))
    if f.high is not None:
        parts.append("%s %s %s" % (col, "<=" if f.high_inclusive else "<", _quote(f.high)))
    return " AND ".join(parts)
