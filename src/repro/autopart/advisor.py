"""The AutoPart partition advisor."""

from dataclasses import dataclass, field

from repro.catalog import HorizontalPartitioning, VerticalFragment, VerticalLayout
from repro.evaluation import WorkloadEvaluator
from repro.sql.binder import BoundWrite, bind_statement
from repro.util import DesignError, workload_pairs
from repro.whatif import Configuration


def _bound_queries(workload, catalog):
    """Yield ``(bound_query, weight)`` for read statements only — writes
    affect partitioning decisions through the cost model, not through the
    attribute-usage analysis."""
    for sql, weight in workload_pairs(workload):
        bound = bind_statement(sql, catalog)
        if not isinstance(bound, BoundWrite):
            yield bound, weight

MAX_HORIZONTAL_PARTITIONS = 16


@dataclass
class PartitionRecommendation:
    """Suggested partitions plus their predicted impact (Figure 3 panel)."""

    configuration: Configuration
    base_workload_cost: float
    predicted_workload_cost: float
    replication_pages: int
    per_query: list = field(default_factory=list)  # (sql, base, new)
    merge_log: list = field(default_factory=list)

    @property
    def layouts(self):
        return {l.table_name: l for l in self.configuration.layouts}

    @property
    def horizontals(self):
        return {h.table_name: h for h in self.configuration.horizontals}

    @property
    def benefit(self):
        return self.base_workload_cost - self.predicted_workload_cost

    @property
    def improvement_pct(self):
        if self.base_workload_cost <= 0:
            return 0.0
        return 100.0 * self.benefit / self.base_workload_cost

    def to_text(self, max_rows=12):
        lines = ["Suggested partitions:"]
        for layout in self.configuration.layouts:
            lines.append("  table %s:" % layout.table_name)
            for frag in layout.fragments:
                lines.append("    fragment {%s}" % ", ".join(frag.columns))
        for horizontal in self.configuration.horizontals:
            lines.append(
                "  table %s: range partition on %s (%d partitions)"
                % (
                    horizontal.table_name,
                    horizontal.column,
                    horizontal.partition_count,
                )
            )
        if not self.configuration.layouts and not self.configuration.horizontals:
            lines.append("  (none — current layout is already good)")
        lines.append("%-6s %12s %12s %9s" % ("query", "base", "new", "gain%"))
        for i, (sql, base, new) in enumerate(self.per_query[:max_rows]):
            pct = 100.0 * (base - new) / base if base > 0 else 0.0
            lines.append("q%-5d %12.1f %12.1f %8.1f%%" % (i, base, new, pct))
        lines.append(
            "workload: %.1f -> %.1f (%.1f%% better), replication %d pages"
            % (
                self.base_workload_cost,
                self.predicted_workload_cost,
                self.improvement_pct,
                self.replication_pages,
            )
        )
        return "\n".join(lines)


class AutoPartAdvisor:
    """Workload-driven partition designer for one catalog."""

    def __init__(self, catalog, settings=None, cost_model=None):
        self.catalog = catalog
        self.cost_model = cost_model or WorkloadEvaluator(catalog, settings)

    # ------------------------------------------------------------------

    def recommend(
        self,
        workload,
        replication_budget_pages=0,
        vertical=True,
        horizontal=True,
        max_merge_rounds=50,
    ):
        """Suggest partitions for *workload*."""
        workload = list(workload)
        if not workload:
            raise DesignError("cannot partition for an empty workload")
        if replication_budget_pages < 0:
            raise DesignError("replication budget must be non-negative")

        merge_log = []
        config = Configuration.empty()
        if vertical:
            config = self._vertical_phase(
                workload, replication_budget_pages, max_merge_rounds, merge_log
            )
        if horizontal:
            config = self._horizontal_phase(workload, config, merge_log)

        base_cost = self.cost_model.workload_cost(workload)
        new_cost = self.cost_model.workload_cost(workload, config)
        per_query = []
        for sql, weight in workload_pairs(workload):
            per_query.append(
                (
                    sql,
                    weight * self.cost_model.cost(sql),
                    weight * self.cost_model.cost(sql, config),
                )
            )
        return PartitionRecommendation(
            configuration=config,
            base_workload_cost=base_cost,
            predicted_workload_cost=new_cost,
            replication_pages=sum(
                l.replication_pages(self.catalog.table(l.table_name))
                for l in config.layouts
            ),
            per_query=per_query,
            merge_log=merge_log,
        )

    # ------------------------------------------------------------------
    # Vertical phase.
    # ------------------------------------------------------------------

    def _usage_signatures(self, workload):
        """Per table: column -> frozenset of query ids referencing it."""
        usage = {}
        for qid, (bq, __) in enumerate(_bound_queries(workload, self.catalog)):
            for alias in bq.aliases:
                table = bq.table_for(alias)
                per_table = usage.setdefault(table.name, {})
                for col in bq.referenced_columns(alias):
                    per_table.setdefault(col, set()).add(qid)
        return usage

    def _primary_layout(self, table, column_usage):
        """Group columns by identical access signature."""
        groups = {}
        for col in table.column_names:
            signature = frozenset(column_usage.get(col, ()))
            groups.setdefault(signature, []).append(col)
        fragments = tuple(
            VerticalFragment(table.name, tuple(cols))
            for __, cols in sorted(
                groups.items(), key=lambda kv: tuple(sorted(kv[1]))
            )
        )
        return VerticalLayout(table.name, fragments)

    def _vertical_phase(self, workload, replication_budget, max_rounds, merge_log):
        usage = self._usage_signatures(workload)
        config = Configuration.empty()
        for table_name, column_usage in sorted(usage.items()):
            table = self.catalog.table(table_name)
            layout = self._primary_layout(table, column_usage)
            if len(layout.fragments) <= 1:
                continue  # everything accessed together: no point
            config = config.with_layout(layout)

        if not config.layouts:
            return config

        current_cost = self.cost_model.workload_cost(workload, config)
        for round_no in range(max_rounds):
            best = None  # (cost, new_config, description)
            for layout in config.layouts:
                frags = layout.fragments
                for i in range(len(frags)):
                    for j in range(i + 1, len(frags)):
                        merged = self._merge_fragments(layout, i, j)
                        candidate = config.with_layout(merged)
                        cost = self.cost_model.workload_cost(workload, candidate)
                        if cost < current_cost - 1e-9 and (
                            best is None or cost < best[0]
                        ):
                            best = (
                                cost,
                                candidate,
                                "merge %s: {%s}+{%s}"
                                % (
                                    layout.table_name,
                                    ",".join(frags[i].columns),
                                    ",".join(frags[j].columns),
                                ),
                            )
            if best is None:
                break
            current_cost, config, note = best
            merge_log.append("round %d: %s -> cost %.1f" % (round_no, note, current_cost))

        if replication_budget > 0:
            config, current_cost = self._replication_phase(
                workload, config, current_cost, replication_budget, merge_log
            )
        # Drop layouts that ended up trivial (single fragment, no benefit).
        kept = tuple(l for l in config.layouts if len(l.fragments) > 1)
        return Configuration(
            indexes=config.indexes, layouts=kept, horizontals=config.horizontals
        )

    @staticmethod
    def _merge_fragments(layout, i, j):
        frags = list(layout.fragments)
        merged_cols = tuple(frags[i].columns) + tuple(
            c for c in frags[j].columns if c not in frags[i].columns
        )
        merged = VerticalFragment(layout.table_name, merged_cols)
        rest = [f for k, f in enumerate(frags) if k not in (i, j)]
        return VerticalLayout(layout.table_name, tuple(rest + [merged]))

    def _replication_phase(self, workload, config, current_cost, budget, merge_log):
        """Add replicated composite fragments for queries spanning fragments."""
        layout_by_table = {l.table_name: l for l in config.layouts}
        candidates = []
        for qid, (bq, __) in enumerate(_bound_queries(workload, self.catalog)):
            for alias in bq.aliases:
                table = bq.table_for(alias)
                layout = layout_by_table.get(table.name)
                if layout is None:
                    continue
                needed = tuple(sorted(bq.referenced_columns(alias)))
                if not needed or len(layout.fragments_for(needed)) <= 1:
                    continue
                candidates.append((table.name, needed))
        seen = set()
        for table_name, needed in candidates:
            if (table_name, needed) in seen:
                continue
            seen.add((table_name, needed))
            layout = layout_by_table[table_name]
            extra = VerticalFragment(table_name, needed)
            widened = VerticalLayout(table_name, layout.fragments + (extra,))
            candidate = config.with_layout(widened)
            replication = sum(
                l.replication_pages(self.catalog.table(l.table_name))
                for l in candidate.layouts
            )
            if replication > budget:
                continue
            cost = self.cost_model.workload_cost(workload, candidate)
            if cost < current_cost - 1e-9:
                config, current_cost = candidate, cost
                layout_by_table[table_name] = widened
                merge_log.append(
                    "replicate %s: {%s} -> cost %.1f"
                    % (table_name, ",".join(needed), cost)
                )
        return config, current_cost

    # ------------------------------------------------------------------
    # Horizontal phase.
    # ------------------------------------------------------------------

    def _horizontal_phase(self, workload, config, merge_log):
        stats_by_table = {}
        for bq, weight in _bound_queries(workload, self.catalog):
            for alias in bq.aliases:
                table = bq.table_for(alias)
                for f in bq.filters_for(alias):
                    if f.kind in ("range", "eq"):
                        counts = stats_by_table.setdefault(table.name, {})
                        counts[f.column] = counts.get(f.column, 0.0) + weight

        current_cost = self.cost_model.workload_cost(workload, config)
        for table_name, counts in sorted(stats_by_table.items()):
            column = max(sorted(counts), key=lambda c: counts[c])
            bounds = self._quantile_bounds(table_name, column)
            if len(bounds) < 1:
                continue
            candidate = config.with_horizontal(
                HorizontalPartitioning(table_name, column, bounds)
            )
            cost = self.cost_model.workload_cost(workload, candidate)
            if cost < current_cost - 1e-9:
                merge_log.append(
                    "horizontal %s on %s (%d parts) -> cost %.1f"
                    % (table_name, column, len(bounds) + 1, cost)
                )
                config, current_cost = candidate, cost
        return config

    def _quantile_bounds(self, table_name, column, parts=MAX_HORIZONTAL_PARTITIONS):
        stats = self.catalog.table(table_name).stats(column)
        hist = stats.histogram
        if len(hist) >= parts:
            step = (len(hist) - 1) / parts
            bounds = []
            for k in range(1, parts):
                value = hist[round(k * step)]
                if not bounds or value > bounds[-1]:
                    bounds.append(value)
            return tuple(bounds)
        if stats.min_value is None or stats.max_value is None:
            return ()
        try:
            lo, hi = float(stats.min_value), float(stats.max_value)
        except (TypeError, ValueError):
            return ()
        if hi <= lo:
            return ()
        return tuple(lo + (hi - lo) * k / parts for k in range(1, parts))

