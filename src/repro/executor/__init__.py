"""Iterator-style executor: runs optimizer plans against generated data.

This is the validation substrate: tests execute the *same* query under
different physical designs (hence different plan shapes) and assert the
result rows are identical, and compare estimated vs actual cardinalities.
"""

from repro.executor.engine import execute_plan, run_query

__all__ = ["execute_plan", "run_query"]
