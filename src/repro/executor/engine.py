"""Plan execution over :class:`~repro.data.generator.Database` instances.

Rows flow through the tree as dictionaries keyed by ``(alias, column)`` so
self-joins stay unambiguous.  Aggregate outputs use ``("#agg", i)`` keys
in the order the aggregates appear in the SELECT list.

The executor follows the plan's *semantics*, not its micro-operators:
fragment and partition scans read the same logical rows (partitioning is
physical, not logical), a merge join is executed hash-style and re-sorted
on its keys, etc.  What matters for validation is that every plan shape
for a query yields identical results.
"""

import bisect

from repro.optimizer.planner import plan_query
from repro.optimizer.settings import DEFAULT_SETTINGS
from repro.sql.binder import bind_sql
from repro.util import PlanningError


def run_query(query, catalog, database, settings=None):
    """Bind, plan, execute and project; returns (plan, rows-as-tuples)."""
    settings = settings or DEFAULT_SETTINGS
    bq = bind_sql(query, catalog) if isinstance(query, str) else query
    plan = plan_query(bq, catalog, settings)
    rows = execute_plan(plan, bq, database)
    return plan, _project(rows, bq)


def execute_plan(plan, bound_query, database):
    """Execute *plan* and return the raw row dictionaries."""
    return _Executor(bound_query, database).run(plan)


# ----------------------------------------------------------------------


def _project(rows, bq):
    out = []
    if bq.is_aggregate or bq.group_by:
        for row in rows:
            tup = tuple(row[(a, c)] for a, c in bq.group_by) + tuple(
                row[("#agg", i)] for i in range(len(bq.aggregates))
            )
            out.append(tup)
        return out
    for row in rows:
        if bq.has_star:
            keys = sorted(k for k in row if k[0] != "#")
            out.append(tuple(row[k] for k in keys))
        else:
            out.append(tuple(row[(a, c)] for a, c in bq.select_columns))
    return out


def _passes(f, value):
    if f.kind == "isnull":
        return value is None
    if f.kind == "notnull":
        return value is not None
    if value is None:
        return False
    if f.kind == "eq":
        return value == f.value
    if f.kind == "ne":
        return value != f.value
    if f.kind == "in":
        return value in f.values
    ok = True
    if f.low is not None:
        ok = value > f.low or (f.low_inclusive and value == f.low)
    if ok and f.high is not None:
        ok = value < f.high or (f.high_inclusive and value == f.high)
    return ok


def _row_passes(filters, alias, row):
    return all(_passes(f, row.get((alias, f.column))) for f in filters)


class _Executor:
    def __init__(self, bq, database):
        self.bq = bq
        self.db = database

    # ------------------------------------------------------------------

    def run(self, node, params=None):
        handler = getattr(self, "_exec_" + node.node_type.lower(), None)
        if handler is None:
            raise PlanningError("executor cannot run node %r" % (node.node_type,))
        return handler(node, params or {})

    # -- scans ----------------------------------------------------------

    def _table_rows(self, table_name, alias):
        data = self.db.table(table_name)
        for i in range(data.row_count):
            yield {
                (alias, col): values[i] for col, values in data.columns.items()
            }

    def _exec_seqscan(self, node, params):
        return [
            row
            for row in self._table_rows(node.table_name, node.alias)
            if _row_passes(node.filters, node.alias, row)
        ]

    def _exec_fragmentscan(self, node, params):
        return self._exec_seqscan(node, params)

    def _exec_appendscan(self, node, params):
        filters = self.bq.filters_for(node.alias)
        return [
            row
            for row in self._table_rows(node.table_name, node.alias)
            if _row_passes(filters, node.alias, row)
        ]

    def _exec_indexscan(self, node, params):
        return self._index_fetch(node, params)

    def _exec_indexonlyscan(self, node, params):
        return self._index_fetch(node, params)

    def _exec_bitmapheapscan(self, node, params):
        return self._index_fetch(node, params)

    def _index_fetch(self, node, params):
        index = node.index
        alias = node.alias
        data = self.db.table(node.table_name)
        row_ids = self._boundary_rowids(index, node.index_filters, params)
        if getattr(node, "backward", False):
            row_ids = list(reversed(row_ids))
        out = []
        residual = node.heap_filters
        for rid in row_ids:
            row = {
                (alias, col): values[rid] for col, values in data.columns.items()
            }
            if _row_passes(residual, alias, row):
                out.append(row)
        return out

    def _exec_bitmapandscan(self, node, params):
        """Intersect the row-id sets of every AND arm, then fetch."""
        rid_sets = []
        for index, arm_filter in zip(node.indexes, node.arm_filters):
            rid_sets.append(
                set(self._boundary_rowids(index, (arm_filter,), params))
            )
        rids = sorted(set.intersection(*rid_sets)) if rid_sets else []
        data = self.db.table(node.table_name)
        alias = node.alias
        out = []
        for rid in rids:
            row = {
                (alias, col): values[rid] for col, values in data.columns.items()
            }
            if _row_passes(node.heap_filters, alias, row):
                out.append(row)
        return out

    def _boundary_rowids(self, index, index_filters, params):
        """Row ids matching the boundary conditions of an index scan.

        Walks the key prefix: equality filters and parameter bindings
        extend the probe tuple, the first range/IN condition bounds the
        bisect window, anything deeper is re-checked as a residual here.
        """
        by_column = {}
        for f in index_filters:
            by_column.setdefault(f.column, []).append(f)

        prefix = []
        range_filter = None
        deep_filters = []
        for col in index.columns:
            eq = next((f for f in by_column.get(col, ()) if f.kind == "eq"), None)
            if eq is not None:
                prefix.append(eq.value)
                continue
            if col in params:
                prefix.append(params[col])
                continue
            range_filter = next(
                (f for f in by_column.get(col, ()) if f.kind in ("range", "in")),
                None,
            )
            break
        # Any boundary filters not consumed by the walk must be re-checked.
        consumed = set()
        for i, col in enumerate(index.columns[: len(prefix)]):
            consumed.add(col)
        if range_filter is not None:
            consumed.add(range_filter.column)
        deep_filters = [f for f in index_filters if f.column not in consumed]

        from repro.data import encode_key

        if any(v is None for v in prefix):
            return []  # equality against NULL never matches
        tree = self.db.btree(index.table_name, index.columns)
        prefix_enc = encode_key(tuple(prefix))
        k = len(prefix_enc)

        def in_window(enc, raw):
            if enc[:k] != prefix_enc:
                return None  # out of prefix: stop
            if range_filter is None:
                return True
            return _passes(range_filter, raw[k])

        if range_filter is not None and range_filter.kind == "in":
            rids = []
            # Probe each distinct value once: IN (0, 0) names one window,
            # and probing it twice would duplicate the matching rows.
            for v in dict.fromkeys(range_filter.values):
                if v is None:
                    continue
                rids.extend(
                    rid
                    for rid in self._scan_window(tree, prefix_enc + encode_key((v,)))
                )
            candidates = rids
        else:
            lo = bisect.bisect_left(tree, (prefix_enc,))
            if range_filter is not None and range_filter.low is not None:
                lo = bisect.bisect_left(
                    tree, (prefix_enc + encode_key((range_filter.low,)),)
                )
            candidates = []
            for enc, rid, raw in tree[lo:]:
                status = in_window(enc, raw)
                if status is None:
                    break
                if status:
                    candidates.append(rid)
                elif range_filter is not None and range_filter.high is not None \
                        and (raw[k] is None or raw[k] > range_filter.high):
                    break
        if not deep_filters:
            return candidates
        data = self.db.table(index.table_name)
        return [
            rid
            for rid in candidates
            if all(
                _passes(f, data.columns[f.column][rid]) for f in deep_filters
            )
        ]

    @staticmethod
    def _scan_window(tree, exact_prefix_enc):
        lo = bisect.bisect_left(tree, (exact_prefix_enc,))
        k = len(exact_prefix_enc)
        for enc, rid, __ in tree[lo:]:
            if enc[:k] != exact_prefix_enc:
                break
            yield rid

    # -- joins ----------------------------------------------------------

    def _exec_nestloop(self, node, params):
        outer_node, inner_node = node.children
        outer_rows = self.run(outer_node, params)
        clauses = node.join_clauses
        out = []
        parameterized = any(n.is_parameterized for n in inner_node.walk())
        if parameterized:
            inner_aliases = {
                n.alias for n in inner_node.walk() if getattr(n, "alias", "")
            }
            for outer in outer_rows:
                bindings = {}
                for clause in clauses:
                    if clause.left_alias in inner_aliases:
                        bindings[clause.left_column] = outer.get(
                            (clause.right_alias, clause.right_column)
                        )
                    elif clause.right_alias in inner_aliases:
                        bindings[clause.right_column] = outer.get(
                            (clause.left_alias, clause.left_column)
                        )
                if any(v is None for v in bindings.values()):
                    continue
                for inner in self.run(inner_node, {**params, **bindings}):
                    merged = {**outer, **inner}
                    if self._join_match(clauses, merged):
                        out.append(merged)
            return out
        inner_rows = self.run(inner_node, params)
        for outer in outer_rows:
            for inner in inner_rows:
                merged = {**outer, **inner}
                if self._join_match(clauses, merged):
                    out.append(merged)
        return out

    @staticmethod
    def _join_match(clauses, row):
        for clause in clauses:
            left = row.get((clause.left_alias, clause.left_column))
            right = row.get((clause.right_alias, clause.right_column))
            if left is None or right is None or left != right:
                return False
        return True

    def _exec_hashjoin(self, node, params):
        outer_node, inner_node = node.children
        outer_rows = self.run(outer_node, params)
        inner_rows = self.run(inner_node, params)
        return self._equi_join(node.join_clauses, outer_rows, inner_rows)

    def _exec_mergejoin(self, node, params):
        outer_node, inner_node = node.children
        outer_rows = self.run(outer_node, params)
        inner_rows = self.run(inner_node, params)
        joined = self._equi_join(node.join_clauses, outer_rows, inner_rows)
        keys = [
            (a, c)
            for a, c, __ in (outer_node.ordering or ())
        ]
        if keys:
            joined.sort(key=lambda r: tuple(_null_key(r.get(k)) for k in keys))
        return joined

    def _equi_join(self, clauses, outer_rows, inner_rows):
        if not clauses:  # cartesian fallback
            return [{**o, **i} for o in outer_rows for i in inner_rows]
        outer_aliases = set()
        for row in outer_rows[:1]:
            outer_aliases = {a for a, __ in row}
        keys = []
        for clause in clauses:
            if clause.left_alias in outer_aliases:
                keys.append(
                    ((clause.left_alias, clause.left_column),
                     (clause.right_alias, clause.right_column))
                )
            else:
                keys.append(
                    ((clause.right_alias, clause.right_column),
                     (clause.left_alias, clause.left_column))
                )
        table = {}
        for inner in inner_rows:
            key = tuple(inner.get(ik) for __, ik in keys)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(inner)
        out = []
        for outer in outer_rows:
            key = tuple(outer.get(ok) for ok, __ in keys)
            if any(v is None for v in key):
                continue
            for inner in table.get(key, ()):
                out.append({**outer, **inner})
        return out

    # -- unary ----------------------------------------------------------

    def _exec_sort(self, node, params):
        rows = self.run(node.children[0], params)
        for alias, column, ascending in reversed(node.sort_keys):
            rows.sort(
                key=lambda r: _null_key(r.get((alias, column))),
                reverse=not ascending,
            )
        return rows

    def _exec_materialize(self, node, params):
        return self.run(node.children[0], params)

    def _exec_limit(self, node, params):
        return self.run(node.children[0], params)[: node.count]

    def _exec_aggregate(self, node, params):
        rows = self.run(node.children[0], params)
        bq = self.bq
        groups = {}
        for row in rows:
            key = tuple(row.get((a, c)) for a, c in bq.group_by)
            groups.setdefault(key, []).append(row)
        if not bq.group_by and not groups:
            groups[()] = []
        out = []
        for key, members in groups.items():
            result = {}
            for (a, c), v in zip(bq.group_by, key):
                result[(a, c)] = v
            for i, agg in enumerate(bq.aggregates):
                result[("#agg", i)] = _aggregate(agg, members)
            out.append(result)
        return out


def _null_key(value):
    return (value is None, value)


def _aggregate(agg, rows):
    name = agg.name
    if name == "count" and not hasattr(agg.arg, "column"):
        return len(rows)
    column_key = (agg.arg.table, agg.arg.column)
    values = [r.get(column_key) for r in rows]
    values = [v for v in values if v is not None]
    if agg.distinct:
        values = list(set(values))
    if name == "count":
        return len(values)
    if not values:
        return None
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "min":
        return min(values)
    if name == "max":
        return max(values)
    raise PlanningError("unknown aggregate %r" % (name,))
