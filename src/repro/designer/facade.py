"""The Designer facade: Figure 1 wired together."""

from dataclasses import dataclass, field

from repro.autopart import AutoPartAdvisor, rewrite_for_layout
from repro.colt import ColtSettings, ColtTuner
from repro.cophy import CoPhyAdvisor, candidate_indexes
from repro.evaluation import WorkloadEvaluator
from repro.interaction import (
    InteractionAnalyzer,
    schedule_greedy,
    schedule_naive,
    schedule_optimal,
)
from repro.util import DesignError, workload_pairs
from repro.whatif import Configuration, WhatIfSession


@dataclass
class DesignEvaluation:
    """Scenario 1 output: benefits of a user-proposed design."""

    report: object  # WhatIfReport
    interaction_graph: object  # InteractionGraph or None
    rewritten_queries: list = field(default_factory=list)

    def to_text(self):
        parts = [self.report.to_text()]
        if self.interaction_graph is not None:
            parts.append(self.interaction_graph.to_text())
        if self.rewritten_queries:
            parts.append("Rewritten queries for the new partitions:")
            for sql in self.rewritten_queries[:10]:
                parts.append("  %s" % sql)
        return "\n\n".join(parts)


@dataclass
class FullRecommendation:
    """Scenario 2 output: indexes + partitions + schedule + interactions."""

    index_recommendation: object
    partition_recommendation: object
    combined_configuration: Configuration
    base_workload_cost: float
    combined_workload_cost: float
    schedule: object = None
    naive_schedule: object = None
    interaction_graph: object = None

    @property
    def improvement_pct(self):
        if self.base_workload_cost <= 0:
            return 0.0
        return (
            100.0
            * (self.base_workload_cost - self.combined_workload_cost)
            / self.base_workload_cost
        )

    def to_text(self):
        parts = [self.index_recommendation.to_text()]
        if self.partition_recommendation is not None:
            parts.append(self.partition_recommendation.to_text())
        if self.interaction_graph is not None:
            parts.append(self.interaction_graph.to_text())
        if self.schedule is not None:
            parts.append(self.schedule.to_text())
            if self.naive_schedule is not None:
                parts.append(
                    "(naive benefit-order schedule area: %.1f vs %.1f — %.1f%% worse)"
                    % (
                        self.naive_schedule.area,
                        self.schedule.area,
                        100.0
                        * (self.naive_schedule.area - self.schedule.area)
                        / max(self.schedule.area, 1e-9),
                    )
                )
        parts.append(
            "combined design: workload %.1f -> %.1f (%.1f%% better)"
            % (
                self.base_workload_cost,
                self.combined_workload_cost,
                self.improvement_pct,
            )
        )
        return "\n\n".join(parts)


class Designer:
    """The automated, interactive, portable physical designer."""

    def __init__(self, catalog, settings=None, evaluator=None):
        self.catalog = catalog
        self.settings = settings
        # One WorkloadEvaluator is the costing backplane for every
        # component: the advisors share its INUM cache pool, the what-if
        # session its exact per-configuration services.
        self.evaluator = evaluator or WorkloadEvaluator(catalog, settings)
        self.cost_model = self.evaluator
        self.session = WhatIfSession(catalog, settings, evaluator=self.evaluator)
        self._index_advisor = CoPhyAdvisor(catalog, cost_model=self.evaluator)
        self._partition_advisor = AutoPartAdvisor(catalog, cost_model=self.evaluator)

    # ------------------------------------------------------------------
    # Scenario 1: interactive what-if evaluation.
    # ------------------------------------------------------------------

    def evaluate_design(self, workload, indexes=(), layouts=(), horizontals=()):
        """Estimate the benefit of a user-chosen design without building it."""
        workload = list(workload)
        if not workload:
            raise DesignError("provide a workload to evaluate against")
        config = Configuration(
            indexes=frozenset(indexes),
            layouts=tuple(layouts),
            horizontals=tuple(horizontals),
        )
        report = self.session.evaluate(workload, config)
        graph = None
        if len(config.indexes) >= 2:
            analyzer = InteractionAnalyzer(self.cost_model, workload)
            graph = analyzer.interaction_graph(config.indexes)
        rewrites = []
        if config.layouts:
            layout_map = {l.table_name: l for l in config.layouts}
            for sql, __ in workload_pairs(workload):
                if self.session.base_service.bound(sql).is_write:
                    continue  # writes are not rewritten onto fragments
                rewritten = rewrite_for_layout(sql, self.catalog, layout_map)
                if rewritten != sql:
                    rewrites.append(rewritten)
        return DesignEvaluation(
            report=report, interaction_graph=graph, rewritten_queries=rewrites
        )

    # ------------------------------------------------------------------
    # Scenario 2: automatic recommendation + schedule.
    # ------------------------------------------------------------------

    def recommend(
        self,
        workload,
        storage_budget_pages,
        solver="milp",
        partitions=True,
        seed_indexes=(),
        max_candidates=60,
        schedule=True,
    ):
        """Recommend indexes (CoPhy) and partitions (AutoPart) within budget.

        ``seed_indexes`` lets the DBA steer the search: user-suggested
        candidates are merged into the generated candidate set, the
        paper's "starting point of the search algorithm".
        """
        workload = list(workload)
        candidates = candidate_indexes(
            self.catalog, workload, max_candidates=max_candidates
        )
        for seed in seed_indexes:
            if seed not in candidates:
                candidates.insert(0, seed)
        index_rec = self._index_advisor.recommend(
            workload,
            storage_budget_pages,
            candidates=candidates,
            solver=solver,
        )

        partition_rec = None
        combined = index_rec.configuration
        if partitions:
            remaining = max(0, storage_budget_pages - index_rec.size_pages)
            partition_rec = self._partition_advisor.recommend(
                workload, replication_budget_pages=remaining
            )
            candidate = combined.union(partition_rec.configuration)
            candidate_cost, combined_only = self.evaluator.workload_costs(
                workload, [candidate, combined]
            )
            if candidate_cost < combined_only:
                combined = candidate
            else:
                partition_rec = None  # partitions did not help on top of indexes

        base_cost, combined_cost = self.evaluator.workload_costs(
            workload, [Configuration.empty(), combined]
        )

        graph = None
        sched = naive = None
        if len(index_rec.indexes) >= 2:
            analyzer = InteractionAnalyzer(self.cost_model, workload)
            graph = analyzer.interaction_graph(index_rec.indexes)
            if schedule:
                sched = schedule_optimal(index_rec.indexes, analyzer.cost, self.catalog)
                naive = schedule_naive(index_rec.indexes, analyzer.cost, self.catalog)
        elif schedule and index_rec.indexes:
            analyzer = InteractionAnalyzer(self.cost_model, workload)
            sched = schedule_greedy(index_rec.indexes, analyzer.cost, self.catalog)

        return FullRecommendation(
            index_recommendation=index_rec,
            partition_recommendation=partition_rec,
            combined_configuration=combined,
            base_workload_cost=base_cost,
            combined_workload_cost=combined_cost,
            schedule=sched,
            naive_schedule=naive,
            interaction_graph=graph,
        )

    # ------------------------------------------------------------------
    # Scenario 3: continuous tuning.
    # ------------------------------------------------------------------

    def continuous(self, stream, colt_settings=None):
        """Monitor *stream* and tune online; returns the OnlineReport."""
        return self.continuous_tuner(colt_settings).run(stream)

    def continuous_tuner(self, colt_settings=None):
        """A live tuner for feed-as-you-go use (alerts stay pending until
        the DBA adopts them when ``auto_adopt=False``)."""
        return ColtTuner(
            self.catalog,
            colt_settings or ColtSettings(),
            planner_settings=self.settings,
            evaluator=self.evaluator,
        )

    # ------------------------------------------------------------------
    # Design hygiene: drop suggestions.
    # ------------------------------------------------------------------

    def suggest_drops(self, workload, configuration=None):
        """Existing indexes no plan would touch under the given (or empty)
        hypothetical configuration — candidates for DROP INDEX.

        Returns ``[(index, pages_reclaimed), ...]`` sorted by reclaimed
        space.  Complements Scenario 2: commercial advisors flag unused
        indexes alongside new ones.
        """
        workload = list(workload)
        if not workload:
            raise DesignError("provide a workload to judge index usage against")
        config = configuration or Configuration.empty()
        service = self.session.service_for(config)
        used = set()
        for sql, __ in workload_pairs(workload):
            if service.bound(sql).is_write:
                continue  # writes maintain indexes, they don't justify them
            used |= {ix.name for ix in service.plan(sql).indexes_used()}
        drops = []
        for ix in self.catalog.indexes:
            if ix.name not in used:
                table = self.catalog.table(ix.table_name)
                drops.append((ix, ix.size_pages(table)))
        drops.sort(key=lambda pair: -pair[1])
        return drops

    # ------------------------------------------------------------------

    def materialize(self, configuration):
        """Physically create a configuration: returns the new catalog and
        the total build cost charged (the demo's "create the suggested
        partitions and indexes" button)."""
        cost = configuration.build_cost(self.catalog)
        return configuration.apply(self.catalog), cost

