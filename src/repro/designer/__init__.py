"""The integrated, interactive, portable DB designer (the demo itself).

:class:`Designer` wires every component of Figure 1 together around the
what-if optimizer and exposes the three demonstration scenarios:

* **Scenario 1** (:meth:`Designer.evaluate_design`) — the DBA proposes
  what-if indexes/partitions; the tool reports per-query and average
  workload benefit, visualizes index interactions, and shows queries
  rewritten for the new partitions.
* **Scenario 2** (:meth:`Designer.recommend`) — automatic index +
  partition recommendation under a storage constraint, with an
  interaction-aware materialization schedule.
* **Scenario 3** (:meth:`Designer.continuous`) — continuous monitoring of
  an incoming query stream with index-change alerts.
"""

from repro.designer.facade import Designer, DesignEvaluation, FullRecommendation

__all__ = ["Designer", "DesignEvaluation", "FullRecommendation"]
