"""Command-line front end: the demo's interface, in terminal form.

    python -m repro describe   [--workload sdss|tpch] [--scale S]
    python -m repro evaluate   --indexes photoobj:ra,dec specobj:z ...
    python -m repro recommend  [--budget-frac F] [--solver milp|greedy|...]
    python -m repro online     [--phase-length N] [--epoch N]
    python -m repro stream     [--phase-length N] [--refresh-every N]
    python -m repro serve      [--tenants N] [--shards N] [--state-dir DIR]
                               [--snapshot-interval N] [--offload N]
                               [--runners HOST:PORT,...] [--staleness K]
    python -m repro runner     [--listen HOST:PORT]
    python -m repro explain    --sql "SELECT ..."

Each subcommand prints the same panels the demo UI shows (benefit tables,
interaction graphs, schedules, per-epoch traces).  ``stream`` runs one
tenant's streaming session (ingest + drift detection + periodic design
refreshes); ``serve`` simulates the multi-tenant service: a mixed
SDSS/TPC-H tenant fleet advancing as resumable steps on the cooperative
scheduler over sharded, shared cache pools — with periodic pause-point
snapshots (``--snapshot-interval``) and optional offload of INUM cache
builds, either to worker processes (``--offload``) or across a fleet of
``runner`` nodes (``--runners``, with a bounded-staleness cache lease
per node; ``runner`` serves one such node).
"""

import argparse
import itertools
import json
import sys
import time

from repro.catalog import Index
from repro.colt import ColtSettings
from repro.designer.facade import Designer
from repro.optimizer import CostService
from repro.service import TuningService
from repro.util import ReproError
from repro.whatif import WhatIfSession
from repro.workloads import (
    sdss_catalog,
    sdss_workload,
    tpch_catalog,
    tpch_workload,
)
from repro.workloads.drift import default_phases, drifting_stream, tpch_phases


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="An automated, yet interactive and portable DB designer",
    )
    parser.add_argument(
        "--workload", choices=("sdss", "tpch"), default="sdss",
        help="built-in schema + query mix to operate on",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1, help="dataset scale factor"
    )
    parser.add_argument(
        "--queries", type=int, default=20, help="number of workload queries"
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="show the catalog and workload")

    evaluate = sub.add_parser(
        "evaluate", help="Scenario 1: what-if evaluate a user design"
    )
    evaluate.add_argument(
        "--indexes",
        nargs="+",
        required=True,
        metavar="TABLE:COL[,COL...]",
        help="candidate indexes, e.g. photoobj:ra,dec",
    )

    recommend = sub.add_parser(
        "recommend", help="Scenario 2: automatic design recommendation"
    )
    recommend.add_argument(
        "--budget-frac", type=float, default=0.3,
        help="storage budget as a fraction of total table pages",
    )
    recommend.add_argument(
        "--solver",
        choices=("milp", "greedy", "lp-rounding", "bnb", "colgen"),
        default="milp",
    )
    recommend.add_argument(
        "--no-partitions", action="store_true", help="indexes only"
    )

    online = sub.add_parser(
        "online", help="Scenario 3: continuous tuning of a drifting stream"
    )
    online.add_argument("--phase-length", type=int, default=75)
    online.add_argument("--epoch", type=int, default=25)
    online.add_argument(
        "--no-adopt", action="store_true",
        help="alert only; leave adoption to the DBA",
    )

    stream = sub.add_parser(
        "stream", help="stream one tenant through a TuningService session"
    )
    stream.add_argument("--phase-length", type=int, default=50)
    stream.add_argument("--epoch", type=int, default=25)
    stream.add_argument(
        "--refresh-every", type=int, default=50,
        help="full-advisor recommendation refresh interval (queries)",
    )
    stream.add_argument(
        "--window", type=int, default=50,
        help="recent-query window priced by each refresh",
    )

    serve = sub.add_parser(
        "serve", help="simulate the multi-tenant tuning service"
    )
    serve.add_argument(
        "--tenants", type=int, default=4,
        help="tenant count, alternating SDSS and TPC-H streams",
    )
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument(
        "--pool-capacity", type=int, default=None,
        help="global cache-pool entry budget per backplane (default unbounded)",
    )
    serve.add_argument("--warm-threads", type=int, default=4)
    serve.add_argument("--phase-length", type=int, default=30)
    serve.add_argument("--epoch", type=int, default=25)
    serve.add_argument("--refresh-every", type=int, default=40)
    serve.add_argument(
        "--state-dir", default=None,
        help="persist tenant state here (wire format) and resume from a "
        "previous snapshot on startup; streams continue mid-phase",
    )
    serve.add_argument(
        "--max-events", type=int, default=0,
        help="stop each tenant after N events this run (0 = run to the "
        "end of the stream); with --state-dir this simulates a service "
        "shutdown mid-stream that the next invocation resumes",
    )
    serve.add_argument(
        "--snapshot-interval", type=int, default=0,
        help="take a consistent service snapshot every N ingested events "
        "at a scheduler pause point, without stopping ingest (requires "
        "--state-dir; 0 disables periodic snapshots)",
    )
    serve.add_argument(
        "--offload", type=int, default=0,
        help="offload INUM cache builds to N worker processes during "
        "scheduled ingest (0/1 = build inline; results are identical "
        "either way)",
    )
    serve.add_argument(
        "--runners", default=None,
        help="offload INUM cache builds to a fleet of runner nodes "
        "(comma-separated host:port list, each started with "
        "'python -m repro runner'); mutually exclusive with --offload; "
        "results are identical to inline execution",
    )
    serve.add_argument(
        "--staleness", type=int, default=0,
        help="runner cache-lease staleness budget in epochs: entries "
        "older than this are refreshed before serving (0 = exact-replay "
        "mode, nothing from an earlier epoch is reused)",
    )
    serve.add_argument(
        "--remote-timeout", type=float, default=30.0,
        help="per-request timeout in seconds against each runner node",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="serve the telemetry backplane over HTTP on 127.0.0.1:PORT "
        "(GET /metrics Prometheus text, /trace span JSON, /status "
        "service snapshot; 0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--metrics-hold", type=float, default=0.0,
        help="keep the metrics endpoint alive this many seconds after "
        "the run completes (so scrapers can read the final state)",
    )
    serve.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="final status output: the terminal panel (text) or the "
        "full status()+registry snapshot as JSON (for scripting)",
    )

    runner = sub.add_parser(
        "runner", help="serve as a remote costing node for serve --runners"
    )
    runner.add_argument(
        "--listen", default="127.0.0.1:0",
        help="host:port to listen on (port 0 binds an ephemeral port; "
        "the bound address is printed on startup)",
    )

    explain = sub.add_parser("explain", help="EXPLAIN one SQL statement")
    explain.add_argument("--sql", required=True)

    drops = sub.add_parser(
        "drops", help="flag existing indexes no workload plan uses"
    )
    drops.add_argument(
        "--indexes",
        nargs="*",
        default=(),
        metavar="TABLE:COL[,COL...]",
        help="pre-create these indexes before judging usage",
    )
    return parser


def parse_index_spec(spec):
    """``table:col1,col2`` -> Index; raises ReproError on malformed input."""
    table, sep, columns = spec.partition(":")
    if not sep or not columns.strip() or not table.strip():
        raise ReproError(
            "bad index spec %r (expected table:col1,col2)" % (spec,)
        )
    cols = tuple(c.strip() for c in columns.split(",") if c.strip())
    if not cols:
        raise ReproError("no columns in index spec %r" % (spec,))
    return Index(table.strip(), cols)


def load_environment(args):
    if args.workload == "sdss":
        catalog = sdss_catalog(scale=args.scale)
        workload = sdss_workload(n_queries=args.queries, seed=args.seed)
    else:
        catalog = tpch_catalog(scale=args.scale)
        workload = tpch_workload(n_queries=args.queries, seed=args.seed)
    return catalog, workload


def main(argv=None, out=sys.stdout):
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args, out)
    except ReproError as exc:
        print("error: %s" % exc, file=out)
        return 2


def _dispatch(args, out):
    if args.command == "runner":
        # A runner is workload-agnostic — each connection ships its own
        # catalog — so skip the environment build entirely.
        from repro.net import RunnerNode, parse_listen_address

        host, port = parse_listen_address(args.listen)
        node = RunnerNode(host=host, port=port, ship_obs=True).start()
        print("runner listening on %s" % node.address, file=out, flush=True)
        try:
            node.wait()
        except KeyboardInterrupt:
            pass
        finally:
            node.stop()
        return 0

    catalog, workload = load_environment(args)

    if args.command == "describe":
        print(catalog.describe(), file=out)
        print("", file=out)
        print(workload.describe(), file=out)
        return 0

    if args.command == "evaluate":
        designer = Designer(catalog)
        indexes = [parse_index_spec(s) for s in args.indexes]
        evaluation = designer.evaluate_design(workload, indexes=indexes)
        print(evaluation.to_text(), file=out)
        return 0

    if args.command == "recommend":
        designer = Designer(catalog)
        budget = int(sum(t.pages for t in catalog.tables) * args.budget_frac)
        result = designer.recommend(
            workload,
            storage_budget_pages=budget,
            solver=args.solver,
            partitions=not args.no_partitions,
        )
        print("storage budget: %d pages" % budget, file=out)
        print(result.to_text(), file=out)
        return 0

    if args.command == "online":
        designer = Designer(catalog)
        settings = ColtSettings(
            epoch_length=args.epoch,
            space_budget_pages=int(sum(t.pages for t in catalog.tables) * 0.5),
            auto_adopt=not args.no_adopt,
        )
        stream = drifting_stream(default_phases(args.phase_length), seed=args.seed)
        report = designer.continuous(stream, settings)
        print(report.to_text(), file=out)
        untuned = _untuned_cost(catalog, args)
        saved = 100.0 * (untuned - report.total_cost) / untuned
        print("untuned: %.1f  -> %.1f%% saved" % (untuned, saved), file=out)
        return 0

    if args.command == "stream":
        phases_fn = default_phases if args.workload == "sdss" else tpch_phases
        service = TuningService()
        service.add_backplane(args.workload, catalog)
        session = service.add_tenant(
            "tenant-0",
            args.workload,
            colt_settings=ColtSettings(
                epoch_length=args.epoch,
                space_budget_pages=int(
                    sum(t.pages for t in catalog.tables) * 0.5
                ),
            ),
            recommend_every=args.refresh_every,
            window=args.window,
        )
        stream = drifting_stream(phases_fn(args.phase_length), seed=args.seed)
        service.run_streams({"tenant-0": stream})
        print(session.report.to_text(), file=out)
        print("", file=out)
        for rec in session.recommendations:
            print(
                "refresh@%d (%s, %s): %s (%.1f%% better)"
                % (
                    rec.at_query,
                    rec.phase,
                    rec.trigger,
                    ",".join(rec.indexes) or "(none)",
                    rec.improvement_pct,
                ),
                file=out,
            )
        print("", file=out)
        print(service.status_text(), file=out)
        return 0

    if args.command == "serve":
        if args.snapshot_interval and not args.state_dir:
            raise ReproError("--snapshot-interval requires --state-dir")
        service = TuningService(
            shards=args.shards,
            pool_capacity=args.pool_capacity,
            warm_threads=args.warm_threads,
        )
        service.add_backplane("sdss", sdss_catalog(scale=args.scale))
        service.add_backplane("tpch", tpch_catalog(scale=args.scale))
        metrics_server = None
        if args.metrics_port is not None:
            from repro.obs import MetricsServer

            metrics_server = MetricsServer(
                port=args.metrics_port, status_fn=service.status
            ).start()
            print("metrics: %s/metrics" % metrics_server.url, file=out,
                  flush=True)
        mixes = {
            "sdss": (default_phases, args.seed),
            "tpch": (tpch_phases, args.seed + 1),
        }
        restored = {}
        if args.state_dir:
            restored = service.load_state(args.state_dir)
            if restored:
                print(
                    "restored %d tenant(s) from %s"
                    % (len(restored), args.state_dir),
                    file=out,
                )
        streams = {}
        for i in range(args.tenants):
            key = "sdss" if i % 2 == 0 else "tpch"
            name = "%s-%d" % (key, i)
            plane = service.backplane(key)
            if name not in restored:
                service.add_tenant(
                    name,
                    key,
                    colt_settings=ColtSettings(
                        epoch_length=args.epoch,
                        space_budget_pages=int(
                            sum(t.pages for t in plane.catalog.tables) * 0.5
                        ),
                    ),
                    recommend_every=args.refresh_every,
                )
            phases_fn, seed = mixes[key]
            # The stream is a deterministic function of its seed, so a
            # restored tenant resumes mid-stream by skipping the events
            # already accounted for before the snapshot (ingested plus
            # restored-but-pending scheduler buffers, which run_scheduled
            # re-queues ahead of this stream).
            stream = itertools.islice(
                drifting_stream(phases_fn(args.phase_length), seed=seed),
                service.stream_offset(name),
                None,
            )
            if args.max_events:
                stream = itertools.islice(stream, args.max_events)
            streams[name] = stream
        executor = None
        if args.runners and args.offload and args.offload > 1:
            raise ReproError(
                "--runners and --offload are mutually exclusive: pick "
                "process offload or the runner fleet"
            )
        if args.runners:
            from repro.runtime import RemoteStepExecutor

            executor = RemoteStepExecutor(
                [addr.strip() for addr in args.runners.split(",")
                 if addr.strip()],
                staleness=args.staleness,
                timeout=args.remote_timeout,
            )
        elif args.offload and args.offload > 1:
            from repro.runtime import ProcessStepExecutor

            executor = ProcessStepExecutor(processes=args.offload)
        try:
            # Warm only backplanes a tenant will actually stream against
            # (--tenants 1 leaves the TPC-H backplane empty).  With an
            # executor the pre-warm builds are offloaded through the
            # same refill seam run_scheduled uses — across worker
            # processes or the runner fleet — with identical entries.
            active = {key for key in mixes
                      if service.backplane(key).tenants}
            for key in active:
                phases_fn, seed = mixes[key]
                service.warm_up(
                    key,
                    [sql for __, sql in
                     drifting_stream(phases_fn(args.phase_length),
                                     seed=seed)],
                    executor=executor,
                )
            # A --max-events run is a simulated shutdown: leave epochs
            # open (no final refresh) so the next invocation resumes
            # seamlessly.
            service.run_scheduled(
                streams,
                executor=executor,
                finish=not args.max_events,
                snapshot_interval=args.snapshot_interval,
                state_dir=args.state_dir if args.snapshot_interval else None,
            )
        finally:
            if executor is not None:
                executor.close()
        if args.state_dir:
            path = service.save_state(args.state_dir)
            print("state saved to %s" % path, file=out)
        if args.format == "json":
            # status() already merges the telemetry registry snapshot
            # under its "obs" key — one JSON document for scripting.
            print(json.dumps(service.status(), default=str), file=out,
                  flush=True)
        else:
            print(service.status_text(), file=out, flush=True)
        if metrics_server is not None:
            if args.metrics_hold > 0:
                # Keep the scrape surface up past the run so external
                # scrapers (CI smoke, a curl in another terminal) can
                # read the final counters.
                time.sleep(args.metrics_hold)
            metrics_server.stop()
        return 0

    if args.command == "explain":
        service = CostService(catalog)
        print(service.explain(args.sql), file=out)
        return 0

    if args.command == "drops":
        working = catalog.clone()
        for spec in args.indexes:
            working.add_index(parse_index_spec(spec))
        designer = Designer(working)
        drops = designer.suggest_drops(workload)
        if not drops:
            print("every existing index is used by some plan", file=out)
        for index, pages in drops:
            print("DROP INDEX %s  -- reclaims %d pages" % (index.name, pages),
                  file=out)
        return 0

    raise ReproError("unknown command %r" % (args.command,))


def _untuned_cost(catalog, args):
    session = WhatIfSession(catalog)
    stream = drifting_stream(default_phases(args.phase_length), seed=args.seed)
    return sum(session.cost(sql) for __, sql in stream)
