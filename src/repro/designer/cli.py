"""Command-line front end: the demo's interface, in terminal form.

    python -m repro describe   [--workload sdss|tpch] [--scale S]
    python -m repro evaluate   --indexes photoobj:ra,dec specobj:z ...
    python -m repro recommend  [--budget-frac F] [--solver milp|greedy|...]
    python -m repro online     [--phase-length N] [--epoch N]
    python -m repro explain    --sql "SELECT ..."

Each subcommand prints the same panels the demo UI shows (benefit tables,
interaction graphs, schedules, per-epoch traces).
"""

import argparse
import sys

from repro.catalog import Index
from repro.colt import ColtSettings
from repro.designer.facade import Designer
from repro.optimizer import CostService
from repro.util import ReproError
from repro.whatif import WhatIfSession
from repro.workloads import (
    sdss_catalog,
    sdss_workload,
    tpch_catalog,
    tpch_workload,
)
from repro.workloads.drift import default_phases, drifting_stream


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="An automated, yet interactive and portable DB designer",
    )
    parser.add_argument(
        "--workload", choices=("sdss", "tpch"), default="sdss",
        help="built-in schema + query mix to operate on",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1, help="dataset scale factor"
    )
    parser.add_argument(
        "--queries", type=int, default=20, help="number of workload queries"
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")

    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="show the catalog and workload")

    evaluate = sub.add_parser(
        "evaluate", help="Scenario 1: what-if evaluate a user design"
    )
    evaluate.add_argument(
        "--indexes",
        nargs="+",
        required=True,
        metavar="TABLE:COL[,COL...]",
        help="candidate indexes, e.g. photoobj:ra,dec",
    )

    recommend = sub.add_parser(
        "recommend", help="Scenario 2: automatic design recommendation"
    )
    recommend.add_argument(
        "--budget-frac", type=float, default=0.3,
        help="storage budget as a fraction of total table pages",
    )
    recommend.add_argument(
        "--solver",
        choices=("milp", "greedy", "lp-rounding", "bnb"),
        default="milp",
    )
    recommend.add_argument(
        "--no-partitions", action="store_true", help="indexes only"
    )

    online = sub.add_parser(
        "online", help="Scenario 3: continuous tuning of a drifting stream"
    )
    online.add_argument("--phase-length", type=int, default=75)
    online.add_argument("--epoch", type=int, default=25)
    online.add_argument(
        "--no-adopt", action="store_true",
        help="alert only; leave adoption to the DBA",
    )

    explain = sub.add_parser("explain", help="EXPLAIN one SQL statement")
    explain.add_argument("--sql", required=True)

    drops = sub.add_parser(
        "drops", help="flag existing indexes no workload plan uses"
    )
    drops.add_argument(
        "--indexes",
        nargs="*",
        default=(),
        metavar="TABLE:COL[,COL...]",
        help="pre-create these indexes before judging usage",
    )
    return parser


def parse_index_spec(spec):
    """``table:col1,col2`` -> Index; raises ReproError on malformed input."""
    table, sep, columns = spec.partition(":")
    if not sep or not columns.strip() or not table.strip():
        raise ReproError(
            "bad index spec %r (expected table:col1,col2)" % (spec,)
        )
    cols = tuple(c.strip() for c in columns.split(",") if c.strip())
    if not cols:
        raise ReproError("no columns in index spec %r" % (spec,))
    return Index(table.strip(), cols)


def load_environment(args):
    if args.workload == "sdss":
        catalog = sdss_catalog(scale=args.scale)
        workload = sdss_workload(n_queries=args.queries, seed=args.seed)
    else:
        catalog = tpch_catalog(scale=args.scale)
        workload = tpch_workload(n_queries=args.queries, seed=args.seed)
    return catalog, workload


def main(argv=None, out=sys.stdout):
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args, out)
    except ReproError as exc:
        print("error: %s" % exc, file=out)
        return 2


def _dispatch(args, out):
    catalog, workload = load_environment(args)

    if args.command == "describe":
        print(catalog.describe(), file=out)
        print("", file=out)
        print(workload.describe(), file=out)
        return 0

    if args.command == "evaluate":
        designer = Designer(catalog)
        indexes = [parse_index_spec(s) for s in args.indexes]
        evaluation = designer.evaluate_design(workload, indexes=indexes)
        print(evaluation.to_text(), file=out)
        return 0

    if args.command == "recommend":
        designer = Designer(catalog)
        budget = int(sum(t.pages for t in catalog.tables) * args.budget_frac)
        result = designer.recommend(
            workload,
            storage_budget_pages=budget,
            solver=args.solver,
            partitions=not args.no_partitions,
        )
        print("storage budget: %d pages" % budget, file=out)
        print(result.to_text(), file=out)
        return 0

    if args.command == "online":
        designer = Designer(catalog)
        settings = ColtSettings(
            epoch_length=args.epoch,
            space_budget_pages=int(sum(t.pages for t in catalog.tables) * 0.5),
            auto_adopt=not args.no_adopt,
        )
        stream = drifting_stream(default_phases(args.phase_length), seed=args.seed)
        report = designer.continuous(stream, settings)
        print(report.to_text(), file=out)
        untuned = _untuned_cost(catalog, args)
        saved = 100.0 * (untuned - report.total_cost) / untuned
        print("untuned: %.1f  -> %.1f%% saved" % (untuned, saved), file=out)
        return 0

    if args.command == "explain":
        service = CostService(catalog)
        print(service.explain(args.sql), file=out)
        return 0

    if args.command == "drops":
        working = catalog.clone()
        for spec in args.indexes:
            working.add_index(parse_index_spec(spec))
        designer = Designer(working)
        drops = designer.suggest_drops(workload)
        if not drops:
            print("every existing index is used by some plan", file=out)
        for index, pages in drops:
            print("DROP INDEX %s  -- reclaims %d pages" % (index.name, pages),
                  file=out)
        return 0

    raise ReproError("unknown command %r" % (args.command,))


def _untuned_cost(catalog, args):
    session = WhatIfSession(catalog)
    stream = drifting_stream(default_phases(args.phase_length), seed=args.seed)
    return sum(session.cost(sql) for __, sql in stream)
