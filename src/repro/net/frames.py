"""Length-prefixed wire frames: the network transport's unit of speech.

A frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON — a :mod:`repro.evaluation.wire` payload, version-stamped by
:func:`wire.dumps` like every other payload in the system.  The frame
kinds (``KIND_HELLO`` / ``KIND_CATALOG`` / ``KIND_TASK`` /
``KIND_RESULT`` / ``KIND_ERROR``) live in the wire module so the one
:data:`~repro.evaluation.wire.WIRE_VERSION` governs files, process
shipments, and network hops alike.

Version negotiation is the handshake itself: the first frame each peer
reads is validated with :func:`wire.check_version`, so a runner speaking
an older (or newer) format is rejected with
:class:`~repro.util.WireFormatError` before any task crosses the
connection — no silent best-effort parsing of foreign frames.

Failure taxonomy, which the retry logic upstream depends on:

* a connection closed *between* frames raises
  :class:`~repro.util.TransportError` — the peer went away cleanly
  (or was killed); retryable;
* a connection closed *mid-frame* raises :class:`TruncatedFrameError`,
  which is both a :class:`~repro.util.WireFormatError` (the frame is
  malformed) and a :class:`~repro.util.TransportError` (a dying node
  truncates; the work is retryable elsewhere);
* undecodable bytes inside a complete frame raise plain
  :class:`~repro.util.WireFormatError` — the peer is incompatible,
  never retried.
"""

import json
import struct

from repro.evaluation import wire
from repro.util import TransportError, WireFormatError

__all__ = [
    "MAX_FRAME_BYTES",
    "TruncatedFrameError",
    "send_frame",
    "recv_frame",
    "error_frame",
]

_HEADER = struct.Struct("!I")

# A frame is one task or one result: catalogs and evaluate chunks are
# the largest residents, comfortably below this.  The bound exists so a
# corrupt length prefix fails loudly instead of attempting a gigabyte
# allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class TruncatedFrameError(TransportError, WireFormatError):
    """A peer closed the connection in the middle of a frame.

    Doubly classified on purpose: the bytes on the wire are malformed
    (:class:`WireFormatError` — what a protocol test asserts), and the
    peer is gone (:class:`TransportError` — what lets the remote
    backplane retry the task on a surviving node)."""


def send_frame(sock, payload):
    """Version-stamp *payload* (a wire dict) and write it as one frame."""
    body = wire.dumps(payload).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireFormatError(
            "frame of %d bytes exceeds the %d-byte bound"
            % (len(body), MAX_FRAME_BYTES)
        )
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock, n, started):
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if buf or started:
                raise TruncatedFrameError(
                    "connection closed mid-frame (%d of %d bytes)"
                    % (len(buf), n)
                )
            raise TransportError("connection closed")
        buf.extend(chunk)
    return bytes(buf)


def recv_frame(sock, check_version=True):
    """Read one frame and return its parsed payload dict.

    Error frames (``KIND_ERROR``) are returned *without* version
    validation — they are how a peer reports a version mismatch, so
    they must be readable across versions.  Every other kind is
    validated with :func:`wire.check_version`; pass
    ``check_version=False`` when the caller validates itself (a server
    that wants to *reply* to a mismatched hello rather than just drop
    the connection)."""
    header = _recv_exact(sock, _HEADER.size, started=False)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireFormatError(
            "frame length %d exceeds the %d-byte bound (corrupt header?)"
            % (length, MAX_FRAME_BYTES)
        )
    body = _recv_exact(sock, length, started=True)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError("undecodable frame: %s" % (exc,)) from exc
    if not isinstance(payload, dict):
        raise WireFormatError("frame payload must be a JSON object")
    if check_version and payload.get("kind") != wire.KIND_ERROR:
        wire.check_version(payload)
    return payload


def error_frame(message, wire_error=False):
    """An error payload; ``wire_error`` marks a format/version failure
    the receiver must re-raise as :class:`WireFormatError` (fatal)
    rather than :class:`TransportError` (retryable)."""
    return {
        "kind": wire.KIND_ERROR,
        "error": str(message),
        "wire_error": bool(wire_error),
    }
