"""The network transport: a costing fleet over sockets.

``repro.net`` extends the wire format across machines: the same
versioned payloads that move cache entries between processes
(:mod:`repro.evaluation.wire`) travel here as length-prefixed frames
(:mod:`repro.net.frames`) between a :class:`RemoteBackplane` and a
fleet of :class:`RunnerNode` workers — catalog shipped once per
connection, SQL out, plan terms and telemetry deltas back, wire version
negotiated at the handshake.  Bounded staleness (per-connection cache
leases with a configurable epoch budget; ``staleness=0`` is exact
replay) keeps a long-lived fleet's derived state from drifting
arbitrarily far from the coordinator's.
"""

from repro.net.client import RemoteBackplane, RunnerConnection
from repro.net.frames import (
    MAX_FRAME_BYTES,
    TruncatedFrameError,
    error_frame,
    recv_frame,
    send_frame,
)
from repro.net.runner import RunnerNode, parse_listen_address

__all__ = [
    "MAX_FRAME_BYTES",
    "RemoteBackplane",
    "RunnerConnection",
    "RunnerNode",
    "TruncatedFrameError",
    "error_frame",
    "parse_listen_address",
    "recv_frame",
    "send_frame",
]
