"""The runner node: one remote worker in the costing fleet.

``python -m repro runner --listen host:port`` runs this loop; a
:class:`~repro.net.client.RemoteBackplane` on another box connects and
fans warm-up / batch-evaluation tasks at it.  Per connection the
protocol is:

1. **hello** — the client's version-stamped handshake; a mismatched
   wire version is answered with an error frame (``wire_error=True``,
   so the client raises :class:`~repro.util.WireFormatError`) and the
   connection is dropped before any state is built;
2. **catalog** — shipped exactly once: the serialized catalog dict,
   planner settings, pool capacity, and the connection's *staleness
   budget*.  The runner rebuilds its own catalog (statistics rebuild
   deterministically) and stands up a private
   :class:`~repro.evaluation.WorkloadEvaluator` — the connection's
   cache lease;
3. **tasks** — ``warm`` / ``evaluate`` frames, executed through the
   same seam the process backplane uses
   (:func:`~repro.evaluation.process.perform_warm` /
   :func:`~repro.evaluation.process.perform_evaluate`), each answered
   with a result frame carrying wire cache entries, the runner's
   telemetry shipment (``KIND_OBS`` deltas, spans stitched via
   ``remote_parent``), and the lease's cache-age accounting.

**Bounded staleness** (the stale-synchronous trade): every task frame
carries the client's current *epoch*; a resident entry built more than
``staleness`` epochs ago is force-refreshed before it may serve the
task, and entries at or under the budget are served as-is.  Entry
builds are pure functions of (SQL, catalog, settings), so a
bounded-stale entry prices *bit-identically* to a fresh one here — the
budget bounds how far the lease may lag a hypothetical
statistics-refresh cycle, and ``staleness=0`` is the exact-replay mode:
nothing built in an earlier epoch is ever reused, pinning the run to a
single-node replay.

The node serves each connection on its own daemon thread and keeps all
per-lease state connection-scoped, so concurrent clients (or one client
with several backplanes) never share caches or epochs.
"""

import socket
import threading
from dataclasses import dataclass, field

from repro import obs
from repro.catalog.serialize import catalog_from_dict, configuration_from_dict
from repro.evaluation import wire
from repro.evaluation.process import perform_evaluate, perform_warm
from repro.inum.cache import build_cache
from repro.net.frames import error_frame, recv_frame, send_frame
from repro.optimizer.settings import PlannerSettings
from repro.optimizer.writecost import locate_query
from repro.util import TransportError, WireFormatError

__all__ = ["RunnerNode", "parse_listen_address"]


def parse_listen_address(text, default_host="127.0.0.1"):
    """``host:port`` (or bare ``:port`` / ``port``) -> ``(host, port)``."""
    host, sep, port = str(text).rpartition(":")
    if not sep:
        host, port = default_host, text
    try:
        return (host or default_host), int(port)
    except (TypeError, ValueError):
        raise WireFormatError(
            "bad listen address %r (expected host:port)" % (text,)
        ) from None


@dataclass
class _Lease:
    """One connection's private costing state: the evaluator plus the
    bounded-staleness bookkeeping for every entry it has built."""

    evaluator: object
    staleness: int = 0
    entry_epoch: dict = field(default_factory=dict)  # signature -> epoch
    stale_refreshes: int = 0

    def enforce(self, targets, epoch):
        """Force-refresh every resident entry among *targets* (pairs of
        ``(sql, locate)``) whose age exceeds the staleness budget.  A
        rebuilt entry's kernel is dropped by the overwriting ``put``, so
        derived state never outlives the lease either."""
        evaluator = self.evaluator
        for sql, locate in targets:
            bq = evaluator.bound(sql)
            if locate:
                bq = locate_query(bq)
            signature = evaluator.signature(bq)
            built = self.entry_epoch.get(signature)
            if (
                built is not None
                and epoch - built > self.staleness
                and signature in evaluator.pool
            ):
                cache = build_cache(
                    bq, evaluator.catalog, evaluator.settings
                )
                evaluator.pool.put(signature, cache)
                self.entry_epoch[signature] = epoch
                self.stale_refreshes += 1
                obs.metrics().counter(
                    "repro_runner_stale_refresh_total",
                    "Lease entries rebuilt after exceeding the "
                    "staleness budget",
                ).inc()

    def stamp(self, signatures, epoch):
        """Record the build epoch of freshly built entries (existing
        stamps — older builds still inside the budget — are kept, so
        ages keep growing until a refresh resets them)."""
        for signature in signatures:
            self.entry_epoch.setdefault(signature, epoch)

    def cache_ages(self, epoch):
        """The lease's age accounting at *epoch*, for the result frame:
        resident-entry count, max/mean age in epochs, refresh total."""
        ages = [
            epoch - built
            for signature, built in self.entry_epoch.items()
            if signature in self.evaluator.pool
        ]
        mean = (sum(ages) / len(ages)) if ages else 0.0
        return {
            "entries": len(ages),
            "age_max": max(ages, default=0),
            "age_mean": mean,
            "stale_refreshes": self.stale_refreshes,
        }


class RunnerNode:
    """Listen for backplane connections and serve costing tasks.

    ``ship_obs=True`` drains this process's telemetry registry into
    every result frame (counter/histogram deltas + finished spans) — the
    mode ``python -m repro runner`` uses, where the registry belongs to
    the runner process alone.  Leave it off for in-process (threaded)
    runners, whose registry is shared with the host and must not be
    drained out from under it.

    ``fail_after_tasks`` is the failure-injection hook the transport
    tests use: after serving that many task frames (across the node's
    lifetime) the node abruptly closes every connection mid-protocol
    and refuses new ones — a deterministic stand-in for a runner dying
    mid-batch.
    """

    def __init__(self, host="127.0.0.1", port=0, ship_obs=False,
                 fail_after_tasks=None):
        self.host = host
        self.port = port
        self.ship_obs = ship_obs
        self.fail_after_tasks = fail_after_tasks
        self.connections_served = 0
        self.tasks_served = 0
        self._listener = None
        self._accept_thread = None
        self._stopping = False
        self._lock = threading.Lock()
        self._open_socks = set()

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    @property
    def address(self):
        """``host:port`` once started — what clients dial."""
        return "%s:%d" % (self.host, self.port)

    def start(self):
        """Bind and serve on a background thread; returns self with
        ``port`` holding the bound (possibly ephemeral) port."""
        if self._listener is not None:
            raise TransportError("RunnerNode already started")
        self._listener = socket.create_server(
            (self.host, self.port), reuse_port=False
        )
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name="repro-runner-%d" % self.port,
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def wait(self):
        """Block until the node is stopped (the CLI's serve-forever)."""
        if self._accept_thread is not None:
            self._accept_thread.join()

    def stop(self):
        """Close the listener and every open connection; idempotent."""
        self._stopping = True
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            socks = list(self._open_socks)
        for sock in socks:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    @property
    def open_connections(self):
        with self._lock:
            return len(self._open_socks)

    def _dead(self):
        return (
            self.fail_after_tasks is not None
            and self.tasks_served >= self.fail_after_tasks
        )

    # ------------------------------------------------------------------
    # The accept / serve loops.
    # ------------------------------------------------------------------

    def _accept_loop(self):
        listener = self._listener
        while not self._stopping:
            try:
                sock, __ = listener.accept()
            except OSError:
                break  # listener closed by stop()
            if self._dead():
                sock.close()
                continue
            with self._lock:
                self._open_socks.add(sock)
            self.connections_served += 1
            threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name="repro-runner-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, sock):
        try:
            self._converse(sock)
        except (TransportError, OSError):
            pass  # peer went away; nothing to answer
        except WireFormatError as exc:
            self._try_reply(sock, error_frame(exc, wire_error=True))
        except Exception as exc:  # never kill the node for one client
            self._try_reply(sock, error_frame(exc))
        finally:
            with self._lock:
                self._open_socks.discard(sock)
            try:
                sock.close()
            except OSError:
                pass

    def _converse(self, sock):
        # Handshake: validate the client's version ourselves so a
        # mismatch is *answered* (error frame, wire_error) instead of
        # silently dropped — that reply is what turns into the client's
        # WireFormatError.
        hello = recv_frame(sock, check_version=False)
        if hello.get("kind") == wire.KIND_ERROR:
            return
        try:
            wire.check_version(hello)
        except WireFormatError as exc:
            self._try_reply(sock, error_frame(exc, wire_error=True))
            return
        if hello.get("kind") != wire.KIND_HELLO:
            raise WireFormatError(
                "expected %r handshake, got %r"
                % (wire.KIND_HELLO, hello.get("kind"))
            )
        send_frame(sock, {"kind": wire.KIND_HELLO, "role": "runner"})

        lease = self._build_lease(recv_frame(sock))
        send_frame(sock, {"kind": wire.KIND_RESULT, "op": "catalog"})

        while True:
            frame = recv_frame(sock)  # TransportError on clean EOF
            if frame.get("kind") != wire.KIND_TASK:
                raise WireFormatError(
                    "expected %r frame, got %r"
                    % (wire.KIND_TASK, frame.get("kind"))
                )
            self.tasks_served += 1
            if self._dead():
                # Failure injection: die mid-protocol, no reply.
                sock.close()
                return
            send_frame(sock, self._handle_task(lease, frame))

    def _build_lease(self, frame):
        if frame.get("kind") != wire.KIND_CATALOG:
            raise WireFormatError(
                "expected %r frame before any task, got %r"
                % (wire.KIND_CATALOG, frame.get("kind"))
            )
        from repro.evaluation.evaluator import WorkloadEvaluator
        from repro.evaluation.pool import InumCachePool

        catalog = catalog_from_dict(frame["catalog"])
        settings = None
        if frame.get("settings") is not None:
            settings = PlannerSettings(**frame["settings"])
        evaluator = WorkloadEvaluator(
            catalog,
            settings,
            pool=InumCachePool(capacity=frame.get("pool_capacity")),
        )
        return _Lease(
            evaluator=evaluator,
            staleness=max(0, int(frame.get("staleness", 0))),
        )

    # ------------------------------------------------------------------
    # Task execution.
    # ------------------------------------------------------------------

    def _handle_task(self, lease, frame):
        op = frame.get("op")
        epoch = int(frame.get("epoch", 0))
        ctx = frame.get("ctx")
        if ctx is not None:
            ctx = tuple(ctx)
        evaluator = lease.evaluator
        if op == "warm":
            sql, locate = frame["sql"], bool(frame.get("locate"))
            lease.enforce([(sql, locate)], epoch)
            signature, cache = perform_warm(evaluator, sql, locate, ctx)
            lease.stamp([signature], epoch)
            reply = {
                "kind": wire.KIND_RESULT,
                "op": "warm",
                "entry": wire.entry_to_wire(signature, cache),
            }
        elif op == "evaluate":
            sqls = list(frame["sqls"])
            configurations = [
                configuration_from_dict(payload)
                for payload in frame["configurations"]
            ]
            lease.enforce(
                [
                    (source, locate)
                    for __, source, locate in evaluator.warm_targets(sqls)
                ],
                epoch,
            )
            columns, built = perform_evaluate(
                evaluator, sqls, configurations, ctx
            )
            lease.stamp(built, epoch)
            reply = {
                "kind": wire.KIND_RESULT,
                "op": "evaluate",
                "start": frame.get("start", 0),
                "columns": columns,
                "entries": [
                    wire.entry_to_wire(sig, evaluator.pool.get(sig))
                    for sig in built
                    if sig in evaluator.pool
                ],
            }
        else:
            raise WireFormatError("unknown task op %r" % (op,))
        reply["cache"] = lease.cache_ages(epoch)
        reply["obs"] = (
            wire.obs_to_wire(obs.drain_deltas()) if self.ship_obs else None
        )
        return reply

    @staticmethod
    def _try_reply(sock, payload):
        try:
            send_frame(sock, payload)
        except OSError:
            pass
