"""The client half of the costing fleet: connections and the backplane.

:class:`RunnerConnection` owns one socket to one runner node — dial,
handshake (wire-version negotiation both ways), one-time catalog
shipment, then a synchronous task/result request loop with a
per-request timeout.

:class:`RemoteBackplane` is the drop-in sibling of
:class:`~repro.evaluation.process.ProcessPoolBackplane`: the same
``warm_up`` / ``evaluate_configurations`` / ``close`` surface, the same
bit-identical results, but the fan-out crosses machines instead of
forked processes.  Scheduling is a shared work deque drained by one
thread per live node, so a fast node takes more tasks and a dead node's
in-flight task is re-queued for the survivors.  Failure handling is
layered:

1. a failed request is retried against the *same* node — reconnect
   (fresh handshake + catalog; leases rebuild deterministically) with
   capped exponential backoff;
2. a node whose retries are exhausted is declared dead for the rest of
   the backplane's life; its queued and in-flight work drains to the
   surviving nodes;
3. with no nodes left, the remainder runs *locally* through the same
   task seam (:func:`~repro.evaluation.process.perform_warm` /
   :func:`~repro.evaluation.process.perform_evaluate`) the runners use,
   so a fully degraded run still produces exactly the single-node
   answer.

Duplicate work across those layers is harmless: entry builds are pure
functions of (SQL, catalog, settings) and installation is idempotent,
so a task that actually completed on a node that *appeared* dead (e.g.
a timeout on the reply) merely rebuilds an identical entry elsewhere.

Every public call advances the backplane's **epoch**, which task frames
carry to the runners: a lease entry older than the configured staleness
budget is force-refreshed runner-side before it may serve, and
``staleness=0`` pins exact-replay mode (nothing built in an earlier
epoch is ever reused).  The runners' cache-age accounting comes back on
every result frame and lands in per-node gauges
(``repro_remote_cache_age_epochs``,
``repro_remote_reconcile_lag_epochs``) next to the retry / death /
fallback counters, so a scrape of ``/metrics`` shows the fleet's
staleness and health at a glance.
"""

import socket
import threading
import time
from collections import deque
from dataclasses import asdict

from repro import obs
from repro.catalog.serialize import catalog_to_dict, configuration_to_dict
from repro.evaluation import wire
from repro.evaluation.process import perform_evaluate, perform_warm
from repro.net.frames import recv_frame, send_frame
from repro.net.runner import parse_listen_address
from repro.util import DesignError, TransportError, workload_pairs

__all__ = ["RunnerConnection", "RemoteBackplane"]


def _raise_error_frame(frame):
    """Re-raise a runner's error frame as the right client exception:
    format/version failures are fatal (:class:`WireFormatError`),
    everything else is a retryable :class:`TransportError`."""
    from repro.util import WireFormatError

    message = "runner error: %s" % (frame.get("error"),)
    if frame.get("wire_error"):
        raise WireFormatError(message)
    raise TransportError(message)


class RunnerConnection:
    """One dialed runner: handshake, catalog shipment, request loop.

    ``catalog_frame`` is the ``KIND_CATALOG`` payload shipped right
    after the hello exchange — built once by the backplane and shared
    by every connection, so N nodes cost one serialization.  ``timeout``
    bounds every socket operation (connect, send, receive), turning a
    hung node into a retryable :class:`TransportError` instead of a
    stuck backplane."""

    def __init__(self, address, catalog_frame, timeout=30.0):
        self.address = str(address)
        self.host, self.port = parse_listen_address(address)
        self.timeout = timeout
        self._catalog_frame = catalog_frame
        self._sock = None

    @property
    def connected(self):
        return self._sock is not None

    def connect(self):
        """Dial, exchange hellos (version negotiation), ship the
        catalog, and wait for the lease acknowledgement."""
        self.close()
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise TransportError(
                "cannot reach runner %s: %s" % (self.address, exc)
            ) from exc
        try:
            send_frame(sock, {"kind": wire.KIND_HELLO, "role": "client"})
            reply = recv_frame(sock)
            if reply.get("kind") == wire.KIND_ERROR:
                _raise_error_frame(reply)
            if reply.get("kind") != wire.KIND_HELLO:
                from repro.util import WireFormatError

                raise WireFormatError(
                    "runner %s answered the handshake with %r"
                    % (self.address, reply.get("kind"))
                )
            send_frame(sock, self._catalog_frame)
            ack = recv_frame(sock)
            if ack.get("kind") == wire.KIND_ERROR:
                _raise_error_frame(ack)
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        return self

    def request(self, frame):
        """One synchronous round trip: send a task frame, return the
        result payload.  Any transport failure leaves the connection
        closed (the retry layer reconnects); an error frame is raised
        as its proper exception."""
        if self._sock is None:
            self.connect()
        sock = self._sock
        try:
            send_frame(sock, frame)
            reply = recv_frame(sock)
        except socket.timeout as exc:
            self.close()
            raise TransportError(
                "runner %s timed out after %.1fs"
                % (self.address, self.timeout)
            ) from exc
        except (TransportError, OSError):
            self.close()
            raise
        if reply.get("kind") == wire.KIND_ERROR:
            _raise_error_frame(reply)
        return reply

    def close(self):
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


class RemoteBackplane:
    """Fan costing work across runner nodes; degrade gracefully to
    local execution.

    ``runners`` is a list of ``host:port`` addresses.  ``staleness`` is
    the fleet's staleness budget in epochs (``0`` = exact-replay mode).
    ``retries`` bounds per-node reconnect attempts per request, with
    exponential backoff from ``backoff`` capped at ``backoff_cap``
    seconds.  The surface mirrors
    :class:`~repro.evaluation.process.ProcessPoolBackplane`: results
    are pinned bit-identical to the in-process path, whatever subset of
    the fleet survives."""

    def __init__(self, evaluator, runners, staleness=0, timeout=30.0,
                 retries=3, backoff=0.05, backoff_cap=1.0):
        if not runners:
            raise DesignError("RemoteBackplane needs at least one runner")
        self.evaluator = evaluator
        self.staleness = max(0, int(staleness))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.epoch = 0
        self._closed = False
        catalog_frame = {
            "kind": wire.KIND_CATALOG,
            "catalog": catalog_to_dict(evaluator.catalog),
            "settings": (
                asdict(evaluator.settings)
                if evaluator.settings is not None else None
            ),
            "pool_capacity": getattr(evaluator.pool, "capacity", None),
            "staleness": self.staleness,
        }
        self._connections = [
            RunnerConnection(address, catalog_frame, timeout=timeout)
            for address in runners
        ]
        self._dead = set()  # addresses declared dead for good
        self._last_ship_epoch = {}  # address -> epoch of last entry batch
        self._declare_metrics()

    # ------------------------------------------------------------------
    # Telemetry.
    # ------------------------------------------------------------------

    def _declare_metrics(self):
        """Declare the fleet's metric families and pre-create each
        node's children, so a scrape shows every node at zero before
        the first task (and a dashboard sees the fleet's shape)."""
        registry = obs.metrics()
        self._m_tasks = registry.counter(
            "repro_remote_tasks_total",
            "Tasks completed by each runner node",
            ("node", "op"),
        )
        self._m_retries = registry.counter(
            "repro_remote_retries_total",
            "Per-node reconnect-and-retry attempts",
            ("node",),
        )
        self._m_deaths = registry.counter(
            "repro_remote_node_deaths_total",
            "Nodes declared dead after exhausting retries",
            ("node",),
        )
        self._m_fallback = registry.counter(
            "repro_remote_fallback_total",
            "Tasks executed locally because no runner survived",
            ("op",),
        )
        self._m_stale = registry.counter(
            "repro_remote_stale_refresh_total",
            "Lease entries refreshed runner-side after exceeding the "
            "staleness budget",
            ("node",),
        )
        self._m_age = registry.gauge(
            "repro_remote_cache_age_epochs",
            "Oldest resident lease entry on each node, in epochs",
            ("node",),
        )
        self._m_lag = registry.gauge(
            "repro_remote_reconcile_lag_epochs",
            "Epochs since each node last shipped entries home",
            ("node",),
        )
        for conn in self._connections:
            node = conn.address
            for op in ("warm", "evaluate"):
                self._m_tasks.labels(node=node, op=op)
            self._m_retries.labels(node=node)
            self._m_deaths.labels(node=node)
            self._m_stale.labels(node=node)
            self._m_age.labels(node=node).set(0)
            self._m_lag.labels(node=node).set(0)
        for op in ("warm", "evaluate"):
            self._m_fallback.labels(op=op)

    def _account_reply(self, conn, reply):
        """Fold one result frame's fleet accounting into the gauges:
        the node's cache ages, its refresh total, and its reconcile lag
        (epochs since it last shipped entries home)."""
        node = conn.address
        cache = reply.get("cache") or {}
        self._m_age.labels(node=node).set(cache.get("age_max", 0))
        self._m_stale.labels(node=node).set_total(
            cache.get("stale_refreshes", 0)
        )
        if reply.get("entry") or reply.get("entries"):
            self._last_ship_epoch[node] = self.epoch
        last = self._last_ship_epoch.get(node)
        self._m_lag.labels(node=node).set(
            self.epoch - last if last is not None else self.epoch
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def _check_open(self):
        if self._closed:
            raise DesignError(
                "RemoteBackplane is closed (its connections are torn "
                "down); create a new backplane to fan out more work"
            )

    @property
    def closed(self):
        return self._closed

    @property
    def live_nodes(self):
        """Addresses not yet declared dead."""
        return [
            conn.address for conn in self._connections
            if conn.address not in self._dead
        ]

    def close(self):
        """Tear down every connection and retire the backplane.

        Idempotent, like the process backplane's close; later use
        raises :class:`DesignError`.  Closing is client-side only — the
        runner nodes keep serving other clients (each connection's
        lease dies with its socket)."""
        self._closed = True
        for conn in self._connections:
            conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # ------------------------------------------------------------------
    # Request plumbing: retry, death, fan-out.
    # ------------------------------------------------------------------

    def _with_retry(self, conn, operation):
        """Run *operation* against one node with reconnect-and-retry.
        Raises :class:`TransportError` once retries are exhausted (the
        caller declares the node dead); :class:`WireFormatError` — an
        incompatible peer — propagates immediately, never retried."""
        attempt = 0
        while True:
            try:
                return operation()
            except (TransportError, OSError) as exc:
                conn.close()
                if attempt >= self.retries:
                    raise TransportError(
                        "runner %s failed after %d retries: %s"
                        % (conn.address, self.retries, exc)
                    ) from exc
                self._m_retries.labels(node=conn.address).inc()
                delay = min(
                    self.backoff_cap, self.backoff * (2 ** attempt)
                )
                if delay > 0:
                    time.sleep(delay)
                attempt += 1

    def _request_with_retry(self, conn, frame):
        return self._with_retry(conn, lambda: conn.request(frame))

    def _fan_out(self, tasks, op):
        """Drain *tasks* (frame dicts) across the live nodes: a shared
        deque, one drainer thread per node.  Rounds repeat while live
        nodes remain, so a task requeued from a dying node's hands is
        picked up by the survivors even if their drainers had already
        run dry.  Returns ``(replies, leftovers)`` — completed
        ``(task, reply)`` pairs plus every task no node could serve,
        which the caller runs locally."""
        remaining = list(tasks)
        replies = []
        errors = []  # fatal (wire-format) failures, re-raised after join
        lock = threading.Lock()

        def mark_dead(conn):
            with lock:
                self._dead.add(conn.address)
            self._m_deaths.labels(node=conn.address).inc()
            conn.close()

        def drain(conn, queue):
            # Establish the connection before claiming any work: a dead
            # node is then *detected* on every fan-out (and its death
            # counted) even when a faster sibling would have drained
            # the whole queue first, and a task is never claimed by a
            # node that cannot serve it.
            if not conn.connected:
                try:
                    self._with_retry(conn, conn.connect)
                except TransportError:
                    mark_dead(conn)
                    return
                except Exception as exc:  # incompatible peer: fatal
                    with lock:
                        errors.append(exc)
                    conn.close()
                    return
            while True:
                with lock:
                    if not queue:
                        return
                    task = queue.popleft()
                try:
                    reply = self._request_with_retry(conn, task)
                except TransportError:
                    with lock:
                        queue.append(task)  # survivors pick it up
                    mark_dead(conn)
                    return
                except Exception as exc:  # incompatible peer: fatal
                    with lock:
                        queue.append(task)
                        errors.append(exc)
                    conn.close()
                    return
                self._m_tasks.labels(node=conn.address, op=op).inc()
                self._account_reply(conn, reply)
                with lock:
                    replies.append((task, reply))

        while remaining:
            live = [
                conn for conn in self._connections
                if conn.address not in self._dead
            ]
            if not live:
                break
            queue = deque(remaining)
            threads = [
                threading.Thread(
                    target=drain, args=(conn, queue),
                    name="repro-remote-%s" % conn.address, daemon=True,
                )
                for conn in live
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
            remaining = list(queue)
        return replies, remaining

    def _install_entry(self, payload):
        """Install one wire cache entry into the parent pool (idempotent)
        and rebuild its columnar kernel, exactly like ``wire.loads`` with
        ``pool=`` does for the process backplane."""
        pool = self.evaluator.pool
        signature, cache = wire.entry_from_wire(
            payload, self.evaluator.catalog
        )
        if signature not in pool:
            pool.put(signature, cache)
        pool.kernel_for(signature)

    def _ingest_obs(self, reply):
        payload = reply.get("obs")
        if payload:
            obs.ingest_deltas(wire.obs_from_wire(payload))

    # ------------------------------------------------------------------
    # Warm-up.
    # ------------------------------------------------------------------

    def warm_up(self, workload):
        """Pre-build the workload's caches across the runner fleet and
        install the shipped entries into the parent pool.  Returns the
        optimizer calls spent, like the in-process and process-pool
        warm-ups; entries are bit-identical whichever node (or the
        local fallback) built them."""
        self._check_open()
        evaluator = self.evaluator
        before = evaluator.precompute_calls
        self.epoch += 1
        targets = [
            (bq, source, locate)
            for bq, source, locate in evaluator.warm_targets(workload)
            if evaluator.signature(bq) not in evaluator.pool
        ]
        if not targets:
            return 0
        with obs.tracer().span("remote.warm_up", targets=len(targets),
                               nodes=len(self.live_nodes)):
            ctx = obs.tracer().current_context()
            tasks = [
                {
                    "kind": wire.KIND_TASK,
                    "op": "warm",
                    "sql": source,
                    "locate": locate,
                    "epoch": self.epoch,
                    "ctx": list(ctx) if ctx else None,
                }
                for __, source, locate in targets
            ]
            replies, leftovers = self._fan_out(tasks, "warm")
            for __, reply in replies:
                self._install_entry(reply["entry"])
                self._ingest_obs(reply)
            for task in leftovers:
                self._m_fallback.labels(op="warm").inc()
                signature, cache = perform_warm(
                    evaluator, task["sql"], task["locate"], ctx
                )
                evaluator.pool.kernel_for(signature)
        return evaluator.precompute_calls - before

    # ------------------------------------------------------------------
    # Batched evaluation.
    # ------------------------------------------------------------------

    def evaluate_configurations(self, workload, configurations):
        """Price all *configurations* against all of *workload* with the
        statement chunks fanned across the runner fleet.  Returns the
        same :class:`~repro.evaluation.BatchEvaluation` the in-process
        evaluator produces — same order, same weights, bit-identical
        matrix — with every runner-built cache entry shipped home."""
        from repro.evaluation.evaluator import BatchEvaluation
        from repro.whatif import Configuration

        self._check_open()
        evaluator = self.evaluator
        self.epoch += 1
        pairs = [
            (evaluator.bound(q).sql, w) for q, w in workload_pairs(workload)
        ]
        configurations = [c or Configuration.empty() for c in configurations]
        if not pairs or not configurations:
            return evaluator.evaluate_configurations(pairs, configurations)
        config_payloads = [
            configuration_to_dict(config) for config in configurations
        ]
        nodes = max(1, len(self.live_nodes))
        chunk = max(1, (len(pairs) + nodes - 1) // nodes)
        columns = [None] * len(pairs)
        with obs.tracer().span("remote.evaluate", statements=len(pairs),
                               configurations=len(configurations),
                               nodes=len(self.live_nodes)):
            ctx = obs.tracer().current_context()
            tasks = [
                {
                    "kind": wire.KIND_TASK,
                    "op": "evaluate",
                    "start": start,
                    "sqls": [sql for sql, __ in pairs[start:start + chunk]],
                    "configurations": config_payloads,
                    "epoch": self.epoch,
                    "ctx": list(ctx) if ctx else None,
                }
                for start in range(0, len(pairs), chunk)
            ]
            replies, leftovers = self._fan_out(tasks, "evaluate")
            for task, reply in replies:
                for offset, column in enumerate(reply["columns"]):
                    columns[task["start"] + offset] = column
                for payload in reply.get("entries", ()):
                    self._install_entry(payload)
                self._ingest_obs(reply)
            for task in leftovers:
                self._m_fallback.labels(op="evaluate").inc()
                chunk_columns, built = perform_evaluate(
                    evaluator, task["sqls"], configurations, ctx
                )
                for offset, column in enumerate(chunk_columns):
                    columns[task["start"] + offset] = column
        matrix = [
            [columns[s][c] for s in range(len(pairs))]
            for c in range(len(configurations))
        ]
        return BatchEvaluation(
            configurations=list(configurations),
            weights=[w for __, w in pairs],
            matrix=matrix,
        )
