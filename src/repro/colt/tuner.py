"""The COLT online tuner.

Life cycle per observed query:

1. charge the query's cost under the currently materialized design,
2. extract candidate single-column indexes from its sargable predicates,
3. spend what-if probes (within the epoch budget) refining gain estimates
   for the most promising / least known candidates.

At each epoch boundary the tuner smooths per-candidate gains with an
EWMA, solves a benefit-density knapsack under the space budget, and — if
the winning configuration differs enough from the current one — raises an
alert; with ``auto_adopt`` it also pays the build cost and switches.

The *self-regulating* probe budget follows the COLT paper: while the
chosen configuration is stable the budget decays, and any workload shift
(new candidate columns appearing) restores it.
"""

from dataclasses import dataclass, field

from repro.catalog import Index
from repro.whatif import Configuration, WhatIfSession


@dataclass(frozen=True)
class ColtSettings:
    """Tuning knobs for the online designer."""

    epoch_length: int = 25
    space_budget_pages: int = 50_000
    whatif_budget: int = 40  # probes per epoch at full throttle
    min_whatif_budget: int = 8
    ewma_alpha: float = 0.35
    adopt_threshold: float = 0.05  # min relative improvement to alert
    amortization_epochs: int = 10  # horizon over which build cost must pay off
    auto_adopt: bool = True


@dataclass
class EpochRecord:
    """What happened in one epoch (one row of the Scenario-3 panel)."""

    epoch: int
    queries: int
    observed_cost: float  # workload cost actually paid this epoch
    build_cost: float  # materialization cost charged this epoch
    whatif_probes: int
    alert: bool
    adopted: bool
    configuration: tuple  # index names materialized at epoch end

    @property
    def total_cost(self):
        return self.observed_cost + self.build_cost


@dataclass
class OnlineReport:
    """Stream-level outcome: per-epoch records plus totals."""

    epochs: list = field(default_factory=list)
    alerts: int = 0
    adoptions: int = 0

    @property
    def observed_cost(self):
        return sum(e.observed_cost for e in self.epochs)

    @property
    def build_cost(self):
        return sum(e.build_cost for e in self.epochs)

    @property
    def total_cost(self):
        return self.observed_cost + self.build_cost

    @property
    def whatif_probes(self):
        return sum(e.whatif_probes for e in self.epochs)

    def sparkline(self):
        """Per-epoch observed cost as a block-character sparkline — the
        terminal stand-in for the demo's performance chart."""
        if not self.epochs:
            return ""
        blocks = "▁▂▃▄▅▆▇█"
        values = [e.observed_cost for e in self.epochs]
        low, high = min(values), max(values)
        span = (high - low) or 1.0
        return "".join(
            blocks[min(len(blocks) - 1, int((v - low) / span * (len(blocks) - 1)))]
            for v in values
        )

    def to_text(self, max_rows=30):
        lines = [
            "%-6s %8s %12s %12s %7s %6s  %s"
            % ("epoch", "queries", "observed", "build", "probes", "alert", "configuration")
        ]
        for e in self.epochs[:max_rows]:
            lines.append(
                "%-6d %8d %12.1f %12.1f %7d %6s  %s"
                % (
                    e.epoch,
                    e.queries,
                    e.observed_cost,
                    e.build_cost,
                    e.whatif_probes,
                    "*" if e.alert else "",
                    ",".join(e.configuration) or "(none)",
                )
            )
        if len(self.epochs) > max_rows:
            lines.append("... (%d more epochs)" % (len(self.epochs) - max_rows))
        lines.append(
            "totals: observed=%.1f build=%.1f alerts=%d adoptions=%d probes=%d"
            % (self.observed_cost, self.build_cost, self.alerts, self.adoptions,
               self.whatif_probes)
        )
        if self.epochs:
            lines.append("observed cost per epoch: %s" % self.sparkline())
        return "\n".join(lines)


@dataclass
class _CandidateState:
    index: Index
    ewma_gain: float = 0.0  # smoothed per-epoch gain
    epoch_gain: float = 0.0  # raw gain observed this epoch
    ewma_maintenance: float = 0.0  # smoothed per-epoch write maintenance
    epoch_maintenance: float = 0.0
    probes: int = 0  # lifetime probe count
    last_seen_epoch: int = 0


class ColtTuner:
    """Continuous tuning over one catalog.

    Use :meth:`observe` per query (or :meth:`run` for a whole stream).
    The component "operates additionally to the rest of the tool and can
    be enabled or disabled" — disabled means simply not calling observe.
    """

    def __init__(self, catalog, settings=None, planner_settings=None,
                 evaluator=None):
        self.catalog = catalog
        self.settings = settings or ColtSettings()
        # All probe/observation costs flow through the (possibly shared)
        # WorkloadEvaluator backplane behind the what-if session.
        self.session = WhatIfSession(catalog, planner_settings, evaluator=evaluator)
        self.evaluator = self.session.evaluator
        self.current = Configuration.empty()
        self.candidates = {}  # Index -> _CandidateState
        self.report = OnlineReport()
        self._epoch_queries = []
        self._epoch_probes = 0
        self._epoch_no = 0
        self._stable_epochs = 0
        self._budget = self.settings.whatif_budget
        self._pending_alert = None

    # ------------------------------------------------------------------

    def run(self, stream):
        """Consume an iterable of SQL strings (or (tag, sql) pairs)."""
        for item in stream:
            sql = item[1] if isinstance(item, tuple) else item
            self.observe(sql)
        self.flush()
        return self.report

    def observe(self, sql):
        self._epoch_queries.append(sql)
        self._harvest_candidates(sql)
        self._probe(sql)
        if len(self._epoch_queries) >= self.settings.epoch_length:
            self._end_epoch()

    def flush(self):
        """Close a partial trailing epoch."""
        if self._epoch_queries:
            self._end_epoch()

    @property
    def pending_alert(self):
        """The configuration last proposed but not (yet) adopted."""
        return self._pending_alert

    # ------------------------------------------------------------------
    # Step hooks (the scheduler's view of the epoch loop).
    # ------------------------------------------------------------------

    @property
    def pending_queries(self):
        """The open epoch's observed queries.  The scheduler's flush
        step prewarms these: closing an epoch re-prices every one of
        them, so their INUM caches should be resident first."""
        return tuple(self._epoch_queries)

    @property
    def will_end_epoch(self):
        """True when observing one more query closes the current epoch —
        the scheduler classifies that observe as a heavy step (epoch end
        prices the whole epoch and solves the knapsack)."""
        return len(self._epoch_queries) + 1 >= self.settings.epoch_length

    def notify_workload_shift(self):
        """External drift signal (e.g. a tuning-service phase boundary):
        restore the full what-if probing budget, exactly as the internal
        self-regulation does when fresh candidate columns appear.  The
        tuner still detects shifts on its own; this lets a host that
        *knows* the workload changed skip the discovery lag."""
        self._budget = self.settings.whatif_budget
        self._stable_epochs = 0

    # ------------------------------------------------------------------
    # Snapshot / restore (the portable-session seam).
    # ------------------------------------------------------------------

    def snapshot_state(self):
        """The tuner's full dynamic state as a JSON-compatible dict.

        Everything a restart needs to continue *bit-identically*: the
        materialized configuration, per-candidate EWMAs (gain and write
        maintenance) plus probe counters, the per-epoch report, the
        open epoch's queries and probe spend, and the self-regulating
        budget.  Settings and catalog are the host's to re-provide —
        the snapshot is pure dynamic state."""
        from repro.catalog.serialize import (
            configuration_to_dict,
            index_sort_key,
            index_to_dict,
            stable_index_ids,
        )

        ids = stable_index_ids(self.candidates)
        return {
            "current": configuration_to_dict(self.current),
            "pending_alert": (
                configuration_to_dict(self._pending_alert)
                if self._pending_alert is not None
                else None
            ),
            "candidates": [
                {
                    "index": index_to_dict(state.index, ids[state.index]),
                    "ewma_gain": state.ewma_gain,
                    "epoch_gain": state.epoch_gain,
                    "ewma_maintenance": state.ewma_maintenance,
                    "epoch_maintenance": state.epoch_maintenance,
                    "probes": state.probes,
                    "last_seen_epoch": state.last_seen_epoch,
                }
                for state in sorted(
                    self.candidates.values(),
                    key=lambda s: index_sort_key(s.index),
                )
            ],
            "report": {
                "alerts": self.report.alerts,
                "adoptions": self.report.adoptions,
                "epochs": [
                    {
                        "epoch": e.epoch,
                        "queries": e.queries,
                        "observed_cost": e.observed_cost,
                        "build_cost": e.build_cost,
                        "whatif_probes": e.whatif_probes,
                        "alert": e.alert,
                        "adopted": e.adopted,
                        "configuration": list(e.configuration),
                    }
                    for e in self.report.epochs
                ],
            },
            "epoch_queries": list(self._epoch_queries),
            "epoch_probes": self._epoch_probes,
            "epoch_no": self._epoch_no,
            "stable_epochs": self._stable_epochs,
            "budget": self._budget,
        }

    def restore_state(self, payload):
        """Overwrite the tuner's dynamic state from a
        :meth:`snapshot_state` payload (built over the same catalog and
        settings); the subsequent stream continues exactly as if the
        process had never stopped."""
        from repro.catalog.serialize import (
            configuration_from_dict,
            index_from_dict,
        )

        self.current = configuration_from_dict(payload["current"])
        pending = payload.get("pending_alert")
        self._pending_alert = (
            configuration_from_dict(pending) if pending is not None else None
        )
        self.candidates = {}
        for entry in payload.get("candidates", ()):
            index = index_from_dict(entry["index"])
            self.candidates[index] = _CandidateState(
                index=index,
                ewma_gain=entry["ewma_gain"],
                epoch_gain=entry["epoch_gain"],
                ewma_maintenance=entry["ewma_maintenance"],
                epoch_maintenance=entry["epoch_maintenance"],
                probes=entry["probes"],
                last_seen_epoch=entry["last_seen_epoch"],
            )
        report = payload.get("report", {})
        self.report = OnlineReport(
            alerts=report.get("alerts", 0),
            adoptions=report.get("adoptions", 0),
            epochs=[
                EpochRecord(
                    epoch=e["epoch"],
                    queries=e["queries"],
                    observed_cost=e["observed_cost"],
                    build_cost=e["build_cost"],
                    whatif_probes=e["whatif_probes"],
                    alert=e["alert"],
                    adopted=e["adopted"],
                    configuration=tuple(e["configuration"]),
                )
                for e in report.get("epochs", ())
            ],
        )
        self._epoch_queries = list(payload.get("epoch_queries", ()))
        self._epoch_probes = payload["epoch_probes"]
        self._epoch_no = payload["epoch_no"]
        self._stable_epochs = payload["stable_epochs"]
        self._budget = payload["budget"]

    # ------------------------------------------------------------------

    def _harvest_candidates(self, sql):
        bq = self.session.base_service.bound(sql)
        if getattr(bq, "is_write", False):
            self._charge_maintenance(bq)
            return
        fresh = False
        for alias in bq.aliases:
            table = bq.table_for(alias)
            columns = set()
            for f in bq.filters_for(alias):
                if f.sargable:
                    columns.add(f.column)
            for clause in bq.joins_for(alias):
                col, __, __ = clause.side_for(alias)
                columns.add(col)
            for col in columns:
                index = Index(table.name, (col,))
                if index not in self.candidates:
                    self.candidates[index] = _CandidateState(
                        index=index, last_seen_epoch=self._epoch_no
                    )
                    fresh = True
                else:
                    self.candidates[index].last_seen_epoch = self._epoch_no
        if fresh:
            # Workload shift detected: restore the full probing budget.
            self._budget = self.settings.whatif_budget
            self._stable_epochs = 0

    def _probe_priority(self, state):
        """Probe unexplored candidates first, then the highest earners."""
        return (state.probes > 0, -state.ewma_gain, state.index.name)

    def _charge_maintenance(self, bound_write):
        """Accumulate the per-epoch maintenance a write would impose on
        every candidate, so the knapsack can net it out of the gains."""
        from repro.optimizer.writecost import (
            affected_rows,
            index_maintenance_cost_per_row,
        )

        rows = affected_rows(bound_write)
        settings = self.session.base_service.settings
        for state in self.candidates.values():
            if bound_write.touches_index(state.index):
                per_row = index_maintenance_cost_per_row(
                    state.index, bound_write.table, settings
                )
                state.epoch_maintenance += rows * per_row

    def _probe(self, sql):
        if self._epoch_probes >= self._budget:
            return
        bq = self.session.base_service.bound(sql)
        if getattr(bq, "is_write", False):
            return  # probing refines read gains only
        tables = {t.name for t in bq.tables.values()}
        relevant = [
            s for s in self.candidates.values()
            if s.index.table_name in tables and s.index not in self.current.indexes
        ]
        relevant.sort(key=self._probe_priority)
        base_cost = self.session.cost(bq, self.current)
        for state in relevant:
            if self._epoch_probes >= self._budget:
                break
            probed = self.session.cost(bq, self.current.with_indexes(state.index))
            state.epoch_gain += max(0.0, base_cost - probed)
            state.probes += 1
            self._epoch_probes += 1

    # ------------------------------------------------------------------

    def _epoch_cost(self, queries):
        """Epoch scoring: the whole epoch priced under the materialized
        design in one columnar-kernel pass
        (:meth:`~repro.evaluation.WorkloadEvaluator.evaluate_many`).

        This is the paper's cheap-evaluation thesis applied to the
        online loop itself: scoring charges INUM plan-term estimates —
        within the cost model's pinned tolerance of the optimizer —
        instead of one exact optimizer probe per observed query, so
        closing an epoch costs array reductions over caches the
        scheduler has typically prewarmed.  What-if *probes* (the gain
        refinements driving adoption) stay on the exact path.

        When the evaluator exposes the delta seam
        (:meth:`~repro.evaluation.WorkloadEvaluator.evaluate_deltas`),
        scoring routes through it with the materialized design as its
        own parent: the epoch's resolved state is captured once and
        memoized, so the re-scoring ``_projected_improvement`` does on
        a first epoch — same workload, same design — answers from the
        captured state instead of a second full pass.  Bit-identical
        either way (the delta seam is pinned against the full pass)."""
        if not queries:
            return 0.0
        deltas = getattr(self.evaluator, "evaluate_deltas", None)
        if deltas is not None:
            return deltas(
                list(queries), self.current, [self.current]
            ).totals[0]
        return self.evaluator.evaluate_many(
            list(queries), [self.current]
        ).totals[0]

    def _end_epoch(self):
        settings = self.settings
        observed = self._epoch_cost(self._epoch_queries)

        alpha = settings.ewma_alpha
        for state in self.candidates.values():
            state.ewma_gain = alpha * state.epoch_gain + (1 - alpha) * state.ewma_gain
            state.epoch_gain = 0.0
            state.ewma_maintenance = (
                alpha * state.epoch_maintenance + (1 - alpha) * state.ewma_maintenance
            )
            state.epoch_maintenance = 0.0

        proposal = self._select_configuration()
        alert, adopted, build_cost = False, False, 0.0
        if proposal != self.current:
            improvement = self._projected_improvement(proposal)
            if improvement > settings.adopt_threshold:
                alert = True
                self.report.alerts += 1
                self._pending_alert = proposal
                if settings.auto_adopt:
                    build_cost = self._materialization_cost(proposal)
                    self.current = proposal
                    self._pending_alert = None
                    adopted = True
                    self.report.adoptions += 1

        if adopted:
            self._stable_epochs = 0
        else:
            self._stable_epochs += 1
            if self._stable_epochs >= 2:
                # Self-regulation: stable design, throttle probing.
                self._budget = max(settings.min_whatif_budget, self._budget // 2)

        self.report.epochs.append(
            EpochRecord(
                epoch=self._epoch_no,
                queries=len(self._epoch_queries),
                observed_cost=observed,
                build_cost=build_cost,
                whatif_probes=self._epoch_probes,
                alert=alert,
                adopted=adopted,
                configuration=tuple(
                    sorted(ix.name for ix in self.current.indexes)
                ),
            )
        )
        self._epoch_queries = []
        self._epoch_probes = 0
        self._epoch_no += 1

    def _select_configuration(self):
        """Benefit-density knapsack over candidates with positive net value."""
        settings = self.settings
        scored = []
        for state in self.candidates.values():
            if state.ewma_gain <= state.ewma_maintenance:
                continue
            index = state.index
            size = index.size_pages(self.catalog.table(index.table_name))
            net_gain = state.ewma_gain - state.ewma_maintenance
            horizon_gain = net_gain * settings.amortization_epochs
            if index not in self.current.indexes:
                horizon_gain -= index.build_cost(
                    self.catalog.table(index.table_name)
                )
            if horizon_gain <= 0.0:
                continue
            scored.append((horizon_gain / max(1, size), horizon_gain, size, index))
        scored.sort(key=lambda t: (-t[0], t[3].name))
        chosen, used = [], 0
        for __, __, size, index in scored:
            if used + size <= settings.space_budget_pages:
                chosen.append(index)
                used += size
        return Configuration(indexes=frozenset(chosen))

    def _projected_improvement(self, proposal):
        """Relative per-epoch gain of switching to *proposal*."""
        gain = 0.0
        for state in self.candidates.values():
            if state.index in proposal.indexes and state.index not in self.current.indexes:
                gain += state.ewma_gain
        recent = self.report.epochs[-1].observed_cost if self.report.epochs else 0.0
        baseline = max(recent, 1e-9)
        if not self.report.epochs:
            # First epoch: compare against this epoch's observed cost
            # (scored the same way _end_epoch scores it).
            baseline = max(self._epoch_cost(self._epoch_queries), 1e-9)
        return gain / baseline

    def _materialization_cost(self, proposal):
        cost = 0.0
        for index in proposal.indexes - self.current.indexes:
            cost += index.build_cost(self.catalog.table(index.table_name))
        return cost
