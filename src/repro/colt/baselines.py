"""Baselines for judging online tuning quality.

* :func:`no_tuning_cost` — leave the database alone (the demo's "before"
  picture);
* :func:`static_oracle` — the best *static* design chosen with hindsight
  over the whole stream (an offline CoPhy run on the full trace).  An
  online tuner cannot beat a clairvoyant static design on a static
  workload, but on a drifting one it can, because no single configuration
  fits all phases — exactly the regime Scenario 3 demonstrates.
"""

from dataclasses import dataclass

from repro.cophy import CoPhyAdvisor
from repro.cophy.compression import compress_workload
from repro.whatif import WhatIfSession
from repro.workloads.workload import Workload


def no_tuning_cost(catalog, stream):
    """Total cost of the stream with the existing design untouched."""
    session = WhatIfSession(catalog)
    total = 0.0
    for item in stream:
        sql = item[1] if isinstance(item, tuple) else item
        total += session.cost(sql)
    return total


@dataclass
class OracleResult:
    configuration: object
    stream_cost: float
    build_cost: float

    @property
    def total_cost(self):
        return self.stream_cost + self.build_cost


def static_oracle(catalog, stream, space_budget_pages, max_candidates=40):
    """Best static configuration in hindsight for the whole stream."""
    statements = [
        item[1] if isinstance(item, tuple) else item for item in stream
    ]
    workload = Workload((sql, 1.0) for sql in statements)
    compressed, __ = compress_workload(catalog, workload)
    advisor = CoPhyAdvisor(catalog)
    recommendation = advisor.recommend(
        compressed, space_budget_pages, max_candidates=max_candidates
    )
    config = recommendation.configuration
    session = WhatIfSession(catalog)
    stream_cost = sum(session.cost(sql, config) for sql in statements)
    return OracleResult(
        configuration=config,
        stream_cost=stream_cost,
        build_cost=config.build_cost(catalog),
    )
