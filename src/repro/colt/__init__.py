"""COLT: continuous on-line tuning (paper §3.2.2, reference [11]).

COLT watches the incoming query stream in epochs, estimates the benefit of
candidate **single-column** indexes with a budgeted number of what-if
optimizer probes, smooths those estimates across epochs, and proposes a
new configuration (a knapsack under the space budget) whenever the
expected speedup justifies the materialization cost.  Adoption is the
DBA's call — the tuner raises *alerts*; `auto_adopt` makes it autonomous.
"""

from repro.colt.baselines import OracleResult, no_tuning_cost, static_oracle
from repro.colt.tuner import ColtSettings, ColtTuner, EpochRecord, OnlineReport

__all__ = [
    "ColtSettings",
    "ColtTuner",
    "EpochRecord",
    "OnlineReport",
    "OracleResult",
    "no_tuning_cost",
    "static_oracle",
]
