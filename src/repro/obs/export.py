"""The scrape surface: Prometheus text and trace JSON over HTTP.

:class:`MetricsServer` runs a stdlib :class:`http.server.ThreadingHTTPServer`
on a daemon thread next to the tuning service — the operator's window
into a live run, in the spirit of the paper's interactive designer:

* ``GET /metrics`` — the registry in Prometheus text exposition format
  (collectors run at scrape time, so pool and scheduler mirrors are
  exact for the instant of the scrape);
* ``GET /trace``  — the tracer's recent finished spans as JSON
  (``?limit=N`` trims to the last N);
* ``GET /status`` — the host-provided status snapshot (e.g.
  :meth:`TuningService.status`) as JSON, when one was wired in.

``port=0`` binds an ephemeral port (tests); the bound port is on
:attr:`MetricsServer.port` after :meth:`start`.  Registry and tracer
default to the process-wide :mod:`repro.obs` state, resolved per
request so ``obs.reset()`` / ``obs.disabled()`` take effect live.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

__all__ = ["MetricsServer"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve the telemetry backplane over HTTP from a daemon thread."""

    def __init__(self, registry=None, tracer=None, host="127.0.0.1",
                 port=0, status_fn=None):
        self.registry = registry
        self.tracer = tracer
        self.host = host
        self.port = port
        self.status_fn = status_fn
        self._server = None
        self._thread = None

    def _registry(self):
        if self.registry is not None:
            return self.registry
        from repro import obs

        return obs.metrics()

    def _tracer(self):
        if self.tracer is not None:
            return self.tracer
        from repro import obs

        return obs.tracer()

    @property
    def url(self):
        return "http://%s:%d" % (self.host, self.port)

    def start(self):
        """Bind and serve; returns self (``port`` now holds the bound
        port).  Idempotent-safe: starting a started server raises."""
        if self._server is not None:
            raise RuntimeError("MetricsServer already started")
        owner = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # quiet: no stderr spam
                pass

            def do_GET(self):
                owner._handle(self)

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self):
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # ------------------------------------------------------------------
    # Request handling.
    # ------------------------------------------------------------------

    def _handle(self, request):
        parsed = urlparse(request.path)
        route = parsed.path.rstrip("/") or "/"
        try:
            if route == "/metrics":
                body = self._registry().render_prometheus()
                self._reply(request, 200, PROMETHEUS_CONTENT_TYPE, body)
            elif route == "/trace":
                limit = None
                raw = parse_qs(parsed.query).get("limit")
                if raw:
                    limit = max(1, int(raw[0]))
                body = json.dumps(
                    {"spans": self._tracer().export(limit=limit)}
                )
                self._reply(request, 200, "application/json", body)
            elif route == "/status" and self.status_fn is not None:
                body = json.dumps(self.status_fn(), default=str)
                self._reply(request, 200, "application/json", body)
            elif route == "/":
                routes = ["/metrics", "/trace"]
                if self.status_fn is not None:
                    routes.append("/status")
                self._reply(request, 200, "text/plain; charset=utf-8",
                            "\n".join(routes) + "\n")
            else:
                self._reply(request, 404, "text/plain; charset=utf-8",
                            "not found\n")
        except Exception as exc:  # a broken scrape must not kill serving
            self._reply(request, 500, "text/plain; charset=utf-8",
                        "error: %s\n" % (exc,))

    @staticmethod
    def _reply(request, code, content_type, body):
        payload = body.encode("utf-8")
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)
