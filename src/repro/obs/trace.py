"""Span tracing: where a tenant's ingest latency actually goes.

A :class:`Span` is one timed region with a name, key/value tags, and a
parent — pool ``get_or_build`` builds, kernel compiles,
``evaluate_many`` sweeps, scheduler step dispatches, tenant
ingest/refresh passes, BIP solves.  The :class:`Tracer` propagates the
current span through a :mod:`contextvars` variable, so nesting falls
out of lexical ``with`` structure (and never leaks across threads —
each thread roots its own trace unless a parent context is passed
explicitly).

Cross-process stitching: a parent-side caller captures
:meth:`Tracer.current_context` and ships it with the task; the worker
opens its spans with ``remote_parent=ctx`` so they join the parent's
trace, then :meth:`Tracer.drain` hands the finished spans (plain
dicts) back over the wire and :meth:`Tracer.ingest` appends them to the
parent's buffer.  Finished spans live in a bounded ring buffer — the
``/trace`` endpoint exports a recent window, not an unbounded log.
"""

import contextvars
import itertools
import os
import threading
import time
from collections import deque

__all__ = ["Span", "Tracer", "NULL_TRACER"]

_DEFAULT_LIMIT = 4096


class Span:
    """One in-flight timed region, usable directly as a context manager.
    ``set_tag`` attaches metadata while the region runs; timing and
    recording happen on ``with`` exit.  The wall-clock start is derived
    from the tracer's cached (wall, perf_counter) base rather than a
    second clock read — opening a span is a single timer call."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "tags",
                 "_tracer", "_token", "_t0", "duration", "error")

    def __init__(self, tracer, name, trace_id, span_id, parent_id, tags):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.tags = tags
        self._tracer = tracer
        self._token = None
        self._t0 = time.perf_counter()
        self.duration = None
        self.error = None

    @property
    def start_wall(self):
        tracer = self._tracer
        return tracer._wall_base + (self._t0 - tracer._perf_base)

    def set_tag(self, key, value):
        self.tags[key] = value

    def __enter__(self):
        self._token = self._tracer._current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.error = "%s: %s" % (exc_type.__name__, exc)
        tracer = self._tracer
        tracer._current.reset(self._token)
        tracer._record(self)
        return False

    def to_dict(self):
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_wall,
            "duration": self.duration,
            "tags": dict(self.tags),
            "error": self.error,
            "pid": os.getpid(),
        }


class Tracer:
    """Context-propagated spans over a bounded finished-span buffer."""

    def __init__(self, limit=_DEFAULT_LIMIT):
        self._current = contextvars.ContextVar("repro_obs_span",
                                               default=None)
        self._lock = threading.Lock()  # leaf lock, like the registry's
        self._finished = deque(maxlen=limit)
        self._ids = itertools.count(1)
        self._seed = "%x" % os.getpid()
        self._wall_base = time.time()
        self._perf_base = time.perf_counter()
        self.spans_recorded = 0

    def _next_id(self):
        return "%s-%x" % (self._seed, next(self._ids))

    def span(self, name, remote_parent=None, **tags):
        """Open a span (context manager yielding the :class:`Span`).

        ``remote_parent`` is a ``(trace_id, span_id)`` pair from
        :meth:`current_context` on another process; it wins over the
        thread-local parent, which is how worker-side spans stitch into
        the dispatching trace."""
        parent = self._current.get()
        if remote_parent is not None:
            trace_id, parent_id = remote_parent
        elif parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = self._next_id(), None
        return Span(self, name, trace_id, self._next_id(), parent_id,
                    tags)

    def current_context(self):
        """``(trace_id, span_id)`` of the active span, or ``None`` —
        what a dispatcher ships to a worker process."""
        span = self._current.get()
        if span is None:
            return None
        return (span.trace_id, span.span_id)

    def _record(self, span):
        # Hot path: append the Span itself; serialization is deferred to
        # export/drain, where finished spans are safe to read unlocked.
        with self._lock:
            self.spans_recorded += 1
            self._finished.append(span)

    @staticmethod
    def _as_dicts(spans):
        return [s.to_dict() if isinstance(s, Span) else s for s in spans]

    def export(self, limit=None):
        """The most recent finished spans (dicts), oldest first."""
        with self._lock:
            spans = list(self._finished)
        return self._as_dicts(spans[-limit:] if limit else spans)

    def drain(self):
        """Pop every finished span — the worker-side delta shipment."""
        with self._lock:
            spans = list(self._finished)
            self._finished.clear()
        return self._as_dicts(spans)

    def ingest(self, spans):
        """Append foreign finished spans (dicts from another process's
        :meth:`drain`) to this buffer."""
        with self._lock:
            self._finished.extend(spans)


class _NullSpan:
    __slots__ = ()

    def set_tag(self, key, value):
        pass


_NULL_SPAN = _NullSpan()


class _NullSpanContextManager:
    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *exc_info):
        return False


_NULL_CM = _NullSpanContextManager()


class _NullTracer:
    """The disabled tracer: spans cost one attribute lookup."""

    __slots__ = ()
    spans_recorded = 0

    def span(self, name, remote_parent=None, **tags):
        return _NULL_CM

    def current_context(self):
        return None

    def export(self, limit=None):
        return []

    def drain(self):
        return []

    def ingest(self, spans):
        pass


NULL_TRACER = _NullTracer()
