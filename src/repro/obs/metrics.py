"""The metrics registry: counters, gauges, and log-bucket histograms.

One process-wide :class:`MetricsRegistry` (owned by :mod:`repro.obs`)
is the numeric half of the telemetry backplane.  Design constraints,
in order:

* **cheap on the hot path** — an increment is one leaf-lock acquire
  plus an integer add; nothing allocates after the first touch of a
  (name, labels) child, and the cache-pool probe path pays *nothing*
  (pool counters are mirrored by collectors at scrape time, so they
  match :class:`~repro.evaluation.pool.PoolStats` exactly instead of
  being double-counted);
* **snapshot-consistent** — every mutation and every read happens
  under one registry lock (the same discipline PR 6 established for
  the evaluator memos), so a scrape never tears a histogram's
  ``sum``/``count`` pair or a mid-flight counter batch.  The registry
  lock is a *leaf*: nothing inside it calls back out, so it nests
  safely inside the pool, shard, and evaluator locks;
* **mergeable across processes** — :meth:`MetricsRegistry.drain_deltas`
  emits the counter/histogram movement since the previous drain as a
  JSON-safe payload and :meth:`MetricsRegistry.apply_deltas` folds such
  a payload in, which is how worker processes ship their telemetry to
  the parent over the wire format.

Histograms use fixed log-scale buckets (powers of four from about one
microsecond to about a minute) so latencies from a kernel sweep to a
full BIP solve land in distinct buckets without per-metric tuning.
"""

import threading
from bisect import bisect_left

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NULL_REGISTRY",
]

# Powers of 4 from ~0.95us to ~67s: 13 finite upper bounds (+Inf is
# implicit), a fixed log-scale ladder shared by every histogram.
DEFAULT_BUCKETS = tuple(9.5367431640625e-07 * (4 ** i) for i in range(13))

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class _Child:
    """One (family, label-values) time series."""

    __slots__ = ("value", "_drained")

    def __init__(self):
        self.value = 0.0
        self._drained = 0.0

    def _delta(self):
        delta = self.value - self._drained
        self._drained = self.value
        return delta


class _HistogramChild:
    """Bucket counts plus sum/count for one label set."""

    __slots__ = ("counts", "sum", "count", "_drained")

    def __init__(self, n_buckets):
        self.counts = [0] * (n_buckets + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self._drained = None  # (counts, sum, count) at last drain

    def _delta(self):
        if self._drained is None:
            prev_counts, prev_sum, prev_count = [0] * len(self.counts), 0.0, 0
        else:
            prev_counts, prev_sum, prev_count = self._drained
        delta = (
            [c - p for c, p in zip(self.counts, prev_counts)],
            self.sum - prev_sum,
            self.count - prev_count,
        )
        self._drained = (list(self.counts), self.sum, self.count)
        return delta


class _Handle:
    """The user-facing mutator for one child (bound to the registry
    lock).  A handle stays valid for the registry's lifetime; holding
    one across calls skips the family/child lookups entirely."""

    __slots__ = ("_registry", "_family", "_child")

    def __init__(self, registry, family, child):
        self._registry = registry
        self._family = family
        self._child = child

    # Counter / gauge surface.

    def inc(self, amount=1):
        with self._registry._lock:
            self._child.value += amount

    def dec(self, amount=1):
        self.inc(-amount)

    def set(self, value):
        with self._registry._lock:
            self._child.value = value

    def set_total(self, value):
        """Mirror an external monotonic counter (collector use): the
        series reports *value* as its cumulative total."""
        self.set(value)

    # Histogram surface.

    def observe(self, value):
        child = self._child
        with self._registry._lock:
            child.counts[bisect_left(self._family.buckets, value)] += 1
            child.sum += value
            child.count += 1

    @property
    def raw(self):
        """The child's current value (counters/gauges) — test hook."""
        with self._registry._lock:
            return self._child.value


class _Family:
    """One named metric: type, help text, label names, children."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets",
                 "children", "_registry", "_default")

    def __init__(self, registry, name, kind, help_text, labelnames, buckets):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(buckets) if kind == HISTOGRAM else ()
        self.children = {}  # label-values tuple -> child
        self._registry = registry
        self._default = None  # handle for the empty-label child

    def _child(self, labelvalues):
        child = self.children.get(labelvalues)
        if child is None:
            if self.kind == HISTOGRAM:
                child = _HistogramChild(len(self.buckets))
            else:
                child = _Child()
            self.children[labelvalues] = child
        return child

    def labels(self, **labels):
        """The handle for one label combination (created on first use)."""
        try:
            values = tuple(str(labels[name]) for name in self.labelnames)
        except KeyError as exc:
            raise ValueError(
                "metric %r needs labels %r, got %r"
                % (self.name, self.labelnames, sorted(labels))
            ) from exc
        if len(labels) != len(self.labelnames):
            raise ValueError(
                "metric %r needs labels %r, got %r"
                % (self.name, self.labelnames, sorted(labels))
            )
        with self._registry._lock:
            return _Handle(self._registry, self, self._child(values))

    def _default_handle(self):
        if self._default is None:
            if self.labelnames:
                raise ValueError(
                    "metric %r is labeled %r; use .labels(...)"
                    % (self.name, self.labelnames)
                )
            with self._registry._lock:
                self._default = _Handle(self._registry, self, self._child(()))
        return self._default

    # Unlabeled convenience: family proxies to its empty-label child.

    def inc(self, amount=1):
        self._default_handle().inc(amount)

    def dec(self, amount=1):
        self._default_handle().dec(amount)

    def set(self, value):
        self._default_handle().set(value)

    def set_total(self, value):
        self._default_handle().set_total(value)

    def observe(self, value):
        self._default_handle().observe(value)


class MetricsRegistry:
    """Thread-safe named metrics plus scrape-time collectors.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return a family;
    re-declaring a name with a different type or label set raises (one
    name, one meaning).  ``add_collector`` registers a callback run at
    the start of every :meth:`snapshot` / :meth:`render_prometheus`;
    collectors mirror externally owned counters (pool stats, scheduler
    queue depths) into the registry at read time, which keeps the hot
    paths untouched and the mirrored values exact.  Bound-method
    collectors are held weakly, so a garbage-collected owner simply
    drops off the scrape.
    """

    def __init__(self):
        self._lock = threading.Lock()  # leaf lock: never calls out
        self._families = {}
        self._collectors = []  # weakref.WeakMethod | callable

    # ------------------------------------------------------------------
    # Declaration.
    # ------------------------------------------------------------------

    def _family(self, name, kind, help_text, labelnames, buckets=()):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    self, name, kind, help_text, labelnames, buckets
                )
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != tuple(labelnames):
            raise ValueError(
                "metric %r already registered as %s%r, re-declared as %s%r"
                % (name, family.kind, family.labelnames, kind,
                   tuple(labelnames))
            )
        return family

    def counter(self, name, help_text="", labelnames=()):
        return self._family(name, COUNTER, help_text, labelnames)

    def gauge(self, name, help_text="", labelnames=()):
        return self._family(name, GAUGE, help_text, labelnames)

    def histogram(self, name, help_text="", labelnames=(),
                  buckets=DEFAULT_BUCKETS):
        return self._family(name, HISTOGRAM, help_text, labelnames, buckets)

    # ------------------------------------------------------------------
    # Collectors.
    # ------------------------------------------------------------------

    def add_collector(self, callback):
        """Register a scrape-time callback (``callback(registry)``).
        Bound methods are held weakly (like the pool's eviction
        listeners); plain callables are held strongly."""
        import weakref

        if hasattr(callback, "__self__"):
            callback = weakref.WeakMethod(callback)
        with self._lock:
            self._collectors.append(callback)

    def collect(self):
        """Run every live collector.  Deliberately *not* under the
        registry lock: collectors read external state (pool locks,
        scheduler state) and write back through the normal handle API,
        so the registry lock stays a leaf."""
        import weakref

        with self._lock:
            callbacks = list(self._collectors)
        live = []
        for entry in callbacks:
            callback = entry() if isinstance(entry, weakref.WeakMethod) \
                else entry
            if callback is None:
                continue
            live.append(entry)
            callback(self)
        if len(live) != len(callbacks):
            with self._lock:
                self._collectors = [
                    c for c in self._collectors
                    if c in live or c not in callbacks
                ]

    # ------------------------------------------------------------------
    # Reading: snapshots, deltas, Prometheus text.
    # ------------------------------------------------------------------

    def snapshot(self, collect=True):
        """A consistent, JSON-safe dump of every family."""
        if collect:
            self.collect()
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            for name, family in sorted(self._families.items()):
                if family.kind == HISTOGRAM:
                    out["histograms"][name] = {
                        "help": family.help,
                        "labelnames": list(family.labelnames),
                        "buckets": list(family.buckets),
                        "samples": [
                            {
                                "labels": dict(
                                    zip(family.labelnames, values)
                                ),
                                "bucket_counts": list(child.counts),
                                "sum": child.sum,
                                "count": child.count,
                            }
                            for values, child in sorted(
                                family.children.items()
                            )
                        ],
                    }
                else:
                    key = "counters" if family.kind == COUNTER else "gauges"
                    out[key][name] = {
                        "help": family.help,
                        "labelnames": list(family.labelnames),
                        "samples": [
                            {
                                "labels": dict(
                                    zip(family.labelnames, values)
                                ),
                                "value": child.value,
                            }
                            for values, child in sorted(
                                family.children.items()
                            )
                        ],
                    }
        return out

    def value(self, name, **labels):
        """Current value of one counter/gauge series (0 when absent) —
        the assertion hook tests and benches read."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0
            values = tuple(str(labels[n]) for n in family.labelnames)
            child = family.children.get(values)
            return child.value if child is not None else 0

    def drain_deltas(self):
        """Counter and histogram movement since the previous drain, as a
        JSON-safe payload :meth:`apply_deltas` consumes.  Gauges are
        local state and never ship."""
        out = {"counters": [], "histograms": []}
        with self._lock:
            for name, family in sorted(self._families.items()):
                if family.kind == COUNTER:
                    samples = []
                    for values, child in sorted(family.children.items()):
                        delta = child._delta()
                        if delta:
                            samples.append([list(values), delta])
                    if samples:
                        out["counters"].append({
                            "name": name,
                            "help": family.help,
                            "labelnames": list(family.labelnames),
                            "samples": samples,
                        })
                elif family.kind == HISTOGRAM:
                    samples = []
                    for values, child in sorted(family.children.items()):
                        counts, total, count = child._delta()
                        if count:
                            samples.append(
                                [list(values), counts, total, count]
                            )
                    if samples:
                        out["histograms"].append({
                            "name": name,
                            "help": family.help,
                            "labelnames": list(family.labelnames),
                            "buckets": list(family.buckets),
                            "samples": samples,
                        })
        return out

    def apply_deltas(self, payload):
        """Fold a :meth:`drain_deltas` payload (typically from a worker
        process, via the wire format) into this registry."""
        for entry in payload.get("counters", ()):
            family = self.counter(
                entry["name"], entry.get("help", ""),
                tuple(entry.get("labelnames", ())),
            )
            with self._lock:
                for values, delta in entry["samples"]:
                    family._child(tuple(values)).value += delta
        for entry in payload.get("histograms", ()):
            family = self.histogram(
                entry["name"], entry.get("help", ""),
                tuple(entry.get("labelnames", ())),
                buckets=tuple(entry.get("buckets", DEFAULT_BUCKETS)),
            )
            with self._lock:
                for values, counts, total, count in entry["samples"]:
                    child = family._child(tuple(values))
                    for pos, c in enumerate(counts):
                        child.counts[pos] += c
                    child.sum += total
                    child.count += count

    def render_prometheus(self, collect=True):
        """The registry in Prometheus text exposition format 0.0.4."""
        if collect:
            self.collect()
        lines = []
        with self._lock:
            for name, family in sorted(self._families.items()):
                if family.help:
                    lines.append(
                        "# HELP %s %s" % (name, _escape_help(family.help))
                    )
                lines.append("# TYPE %s %s" % (name, family.kind))
                for values, child in sorted(family.children.items()):
                    base = list(zip(family.labelnames, values))
                    if family.kind == HISTOGRAM:
                        running = 0
                        for bound, count in zip(
                            family.buckets, child.counts
                        ):
                            running += count
                            lines.append(_sample(
                                name + "_bucket",
                                base + [("le", _format_value(bound))],
                                running,
                            ))
                        lines.append(_sample(
                            name + "_bucket", base + [("le", "+Inf")],
                            child.count,
                        ))
                        lines.append(_sample(name + "_sum", base, child.sum))
                        lines.append(
                            _sample(name + "_count", base, child.count)
                        )
                    else:
                        lines.append(_sample(name, base, child.value))
        return "\n".join(lines) + "\n"


def _escape_help(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value):
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _sample(name, labels, value):
    if labels:
        body = ",".join(
            '%s="%s"' % (key, _escape_label(val)) for key, val in labels
        )
        return "%s{%s} %s" % (name, body, _format_value(value))
    return "%s %s" % (name, _format_value(value))


class _NullHandle:
    """Shared no-op mutator: what `obs.disabled()` hands out."""

    __slots__ = ()

    def labels(self, **labels):
        return self

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def set_total(self, value):
        pass

    def observe(self, value):
        pass

    @property
    def raw(self):
        return 0


_NULL_HANDLE = _NullHandle()


class _NullRegistry:
    """The disabled registry: same surface, no state, no locks."""

    __slots__ = ()

    def counter(self, name, help_text="", labelnames=()):
        return _NULL_HANDLE

    def gauge(self, name, help_text="", labelnames=()):
        return _NULL_HANDLE

    def histogram(self, name, help_text="", labelnames=(),
                  buckets=DEFAULT_BUCKETS):
        return _NULL_HANDLE

    def add_collector(self, callback):
        pass

    def collect(self):
        pass

    def snapshot(self, collect=True):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def value(self, name, **labels):
        return 0

    def drain_deltas(self):
        return {"counters": [], "histograms": []}

    def apply_deltas(self, payload):
        pass

    def render_prometheus(self, collect=True):
        return ""


NULL_REGISTRY = _NullRegistry()
