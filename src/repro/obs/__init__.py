"""The telemetry backplane: one registry, one tracer, process-wide.

Every layer of the designer — the cache pool, the columnar kernel, the
cooperative scheduler, tenant sessions, BIP solves, the process
backplane — reports into the state this module owns:

* :func:`metrics` — the current :class:`~repro.obs.metrics.MetricsRegistry`
  (counters, gauges, log-bucket histograms, scrape-time collectors);
* :func:`tracer` — the current :class:`~repro.obs.trace.Tracer`
  (context-propagated spans with parent ids, stitched across process
  boundaries via the wire format);
* :func:`disabled` — a context manager swapping both for shared no-op
  twins: the uninstrumented baseline the overhead benchmark pins
  against (``bench_claim_obs_overhead.py`` keeps instrumented kernel
  evaluation and fleet ingest within a few percent of this);
* :func:`drain_deltas` / :func:`ingest_deltas` — the worker shipment:
  counter/histogram movement since the last drain plus the finished
  spans, JSON-safe, carried as a versioned wire-format section
  (:func:`repro.evaluation.wire.obs_to_wire`).  Both the process
  backplane and the network runner fleet (:mod:`repro.net`) ship
  through this seam, so remote spans stitch into the coordinator's
  traces and the fleet's health (``repro_remote_*`` counters, per-node
  cache-age and reconcile-lag gauges) lands in one registry.

Instrumentation always resolves the state *at call time*
(``obs.metrics()`` / ``obs.tracer()``), never caches it at import, so
:func:`disabled` and :func:`reset` take effect everywhere at once.
Exports live in :mod:`repro.obs.export` (`/metrics` Prometheus text,
``/trace`` JSON) and in :meth:`TuningService.status`, which merges
:meth:`MetricsRegistry.snapshot` into its payload.
"""

from contextlib import contextmanager

from repro.obs.export import MetricsServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
)
from repro.obs.trace import NULL_TRACER, Span, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "MetricsServer",
    "Span",
    "Tracer",
    "disabled",
    "drain_deltas",
    "enabled",
    "ingest_deltas",
    "metrics",
    "reset",
    "tracer",
]

_metrics = MetricsRegistry()
_tracer = Tracer()


def metrics():
    """The process-wide metrics registry (or its no-op twin)."""
    return _metrics


def tracer():
    """The process-wide tracer (or its no-op twin)."""
    return _tracer


def enabled():
    """Is telemetry currently recording?"""
    return _metrics is not NULL_REGISTRY


@contextmanager
def disabled():
    """Swap the registry and tracer for shared no-op objects for the
    duration of the block — the uninstrumented baseline."""
    global _metrics, _tracer
    saved = (_metrics, _tracer)
    _metrics, _tracer = NULL_REGISTRY, NULL_TRACER
    try:
        yield
    finally:
        _metrics, _tracer = saved


def reset():
    """Replace the registry and tracer with fresh, empty ones (worker
    initializers after fork, tests needing isolation).  Returns the new
    registry."""
    global _metrics, _tracer
    _metrics = MetricsRegistry()
    _tracer = Tracer()
    return _metrics


def drain_deltas():
    """Everything this process accumulated since the last drain:
    counter/histogram deltas plus finished spans — the worker-side half
    of cross-process telemetry."""
    payload = _metrics.drain_deltas()
    payload["spans"] = _tracer.drain()
    return payload


def ingest_deltas(payload):
    """Fold a :func:`drain_deltas` payload from another process into
    the live registry and tracer."""
    _metrics.apply_deltas(payload)
    _tracer.ingest(payload.get("spans", ()))
