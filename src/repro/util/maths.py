"""Tiny numeric helpers shared across the cost model and designers."""

import math


def align8(nbytes):
    """Round *nbytes* up to the next multiple of 8 (PostgreSQL MAXALIGN)."""
    return (int(nbytes) + 7) & ~7


def ceil_div(numerator, denominator):
    """Integer ceiling division; denominator must be positive."""
    if denominator <= 0:
        raise ValueError("denominator must be positive, got %r" % (denominator,))
    return -(-int(numerator) // int(denominator))


def clamp(value, low, high):
    """Clamp *value* into the closed interval [low, high]."""
    if low > high:
        raise ValueError("empty interval [%r, %r]" % (low, high))
    return max(low, min(high, value))


def safe_log2(value):
    """log2 that tolerates values below 2 (returns at least 1.0).

    The cost model uses ``N * log2(N)`` terms for sorts; for tiny inputs the
    logarithm must not go to zero or negative.
    """
    return math.log2(value) if value >= 2.0 else 1.0
