"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
applications embedding the designer can catch one base type.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CatalogError(ReproError):
    """Raised for inconsistent catalog operations (unknown table, duplicate
    index name, dropping a missing object, ...)."""


class ParseError(ReproError):
    """Raised by the SQL lexer/parser on malformed input.

    Carries the character position when known so callers can render a caret.
    """

    def __init__(self, message, position=None):
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """Raised when a parsed query references unknown tables or columns, or
    is otherwise semantically invalid for the given catalog."""


class PlanningError(ReproError):
    """Raised when the optimizer cannot produce a plan (e.g. every join
    method disabled, or an internal invariant is violated)."""


class DesignError(ReproError):
    """Raised by designer components for invalid tuning requests (negative
    storage budget, empty workload where one is required, ...)."""


class WireFormatError(ReproError):
    """Raised when a wire-format payload (serialized plan terms, tenant
    snapshot, service state) has the wrong version or a malformed shape."""


class TransportError(ReproError):
    """Raised when a network transport operation fails for reasons other
    than payload shape: a peer closed the connection, a request timed
    out, a runner died mid-batch.  Transport failures are *retryable* —
    the remote backplane reconnects with capped exponential backoff and
    finally degrades to local execution — unlike
    :class:`WireFormatError`, which marks an incompatible peer and
    always propagates."""
