"""Small shared utilities: error types, math helpers, deterministic RNG."""

from repro.util.errors import (
    ReproError,
    CatalogError,
    ParseError,
    BindError,
    PlanningError,
    DesignError,
)
from repro.util.maths import align8, ceil_div, clamp, safe_log2

__all__ = [
    "ReproError",
    "CatalogError",
    "ParseError",
    "BindError",
    "PlanningError",
    "DesignError",
    "align8",
    "ceil_div",
    "clamp",
    "safe_log2",
]
