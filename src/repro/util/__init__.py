"""Small shared utilities: error types, math helpers, deterministic RNG."""

from repro.util.errors import (
    ReproError,
    CatalogError,
    ParseError,
    BindError,
    PlanningError,
    DesignError,
    WireFormatError,
    TransportError,
)
from repro.util.maths import align8, ceil_div, clamp, safe_log2


def workload_pairs(workload):
    """Normalize a workload into ``(statement, weight)`` pairs.

    Accepts the protocol every costing API speaks: an iterable of
    ``(sql, weight)`` tuples, bare statements (weight 1.0), or a
    :class:`~repro.workloads.Workload`.
    """
    for entry in workload:
        if isinstance(entry, tuple) and len(entry) == 2:
            yield entry
        else:
            yield entry, 1.0


__all__ = [
    "workload_pairs",
    "ReproError",
    "CatalogError",
    "ParseError",
    "BindError",
    "PlanningError",
    "DesignError",
    "WireFormatError",
    "TransportError",
    "align8",
    "ceil_div",
    "clamp",
    "safe_log2",
]
