"""Resumable tenant steps: the unit of work the scheduler dispatches.

A :class:`Step` is one small, non-reentrant piece of a tenant session's
ingest/epoch/refresh machinery — produced by
:meth:`~repro.service.tenant.TenantSession.ingest_steps` and
:meth:`~repro.service.tenant.TenantSession.finish_steps` — together
with the metadata the scheduler needs to place it: whether the step may
issue optimizer-heavy INUM cache builds (``heavy``) and which SQL
statements those builds would serve (``prewarm``), so a process-offload
executor can warm the shared pool *before* the step runs inline.

A :class:`TenantTask` wraps one session plus its event source and
exposes the session as an explicit state machine: pull (or accept) an
event, run its steps one at a time, finish.  Between any two steps the
task is suspended — that gap is the scheduler's dispatch point, and the
gap between two *events* (``at_event_boundary``) is the consistent
pause point where a snapshot of the session can be taken mid-stream.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.util import DesignError

__all__ = ["Step", "TenantTask", "event_sql"]


def event_sql(event):
    """The SQL text of a stream event (``(phase, sql)`` or plain SQL)."""
    return event[1] if isinstance(event, tuple) else event


@dataclass(frozen=True)
class Step:
    """One resumable unit of tenant work.

    ``run`` performs the step (bound to the owning session); ``heavy``
    marks steps that may issue optimizer-heavy cache builds; ``prewarm``
    lists the SQL whose INUM caches the step will price, so an executor
    can build them out-of-process first (results-neutral: caches are
    pure functions of the bound query, catalog, and settings).
    """

    kind: str  # "drift" | "observe" | "refresh" | "flush" | "final"
    run: object  # zero-argument callable
    heavy: bool = False
    prewarm: tuple = ()


class TenantTask:
    """One tenant session driven step-by-step by the scheduler.

    Event sources come in two shapes:

    * **pull** — ``stream`` is an iterable; the scheduler refills the
      task's buffer (``pending``) ahead of ingest, which is what gives
      the offload executor whole batches of upcoming statements to warm
      across worker processes;
    * **push** — ``stream is None``; events arrive via :meth:`submit`
      (bounded by ``max_pending`` — admission control), and
      :meth:`close_intake` announces the end of the stream so the
      session's trailing epoch can be flushed.

    ``priority`` weights the scheduler's stride accounting: a tenant
    with priority 2.0 receives twice the steps of a priority-1.0 tenant
    while both are runnable.  The task itself is not thread-safe; the
    cooperative scheduler drives every task from one thread.
    """

    def __init__(self, name, session, stream=None, finish=True,
                 priority=1.0, max_pending=None, order=0):
        if priority <= 0:
            raise DesignError(
                "task priority must be positive, got %r" % (priority,)
            )
        if max_pending is not None and max_pending < 1:
            raise DesignError(
                "max_pending must be at least 1, got %r" % (max_pending,)
            )
        self.name = name
        self.session = session
        self.finish = finish
        self.priority = priority
        self.max_pending = max_pending
        self.order = order  # registration index, the fairness tie-break
        self.stride = 1.0 / priority
        self.pass_value = 0.0
        self.pending = deque()  # buffered events, pulled or pushed
        self.done = False
        self.steps_run = 0
        self.events_started = 0
        self._stream = iter(stream) if stream is not None else None
        self._source_done = False  # no more events will ever arrive
        self._gen = None  # active step generator (one event, or finish)
        self._next = None  # staged step, not yet run
        self._finishing = False

    # ------------------------------------------------------------------
    # Event intake.
    # ------------------------------------------------------------------

    @property
    def queue_depth(self):
        """Events buffered but not yet ingested."""
        return len(self.pending)

    def submit(self, event):
        """Push one event (push-mode intake).  Returns ``False`` when the
        per-tenant buffer is full — the backpressure signal; the caller
        retries after the scheduler has drained some steps."""
        if self._source_done:
            raise DesignError(
                "tenant task %r intake is closed" % (self.name,)
            )
        if (
            self.max_pending is not None
            and len(self.pending) >= self.max_pending
        ):
            return False
        self.pending.append(event)
        return True

    def close_intake(self):
        """No more pushed events: drain what is buffered, then finish."""
        self._source_done = True

    def refill(self, lookahead):
        """Pull events from the stream until ``lookahead`` are buffered
        (bounded by ``max_pending``); returns the newly pulled events so
        the executor can prewarm their caches as one batch."""
        pulled = []
        if self._stream is None or self._source_done:
            return pulled
        limit = lookahead
        if self.max_pending is not None:
            limit = min(limit, self.max_pending)
        while len(self.pending) < limit:
            try:
                event = next(self._stream)
            except StopIteration:
                self._source_done = True
                break
            self.pending.append(event)
            pulled.append(event)
        return pulled

    # ------------------------------------------------------------------
    # Step dispatch.
    # ------------------------------------------------------------------

    @property
    def at_event_boundary(self):
        """True between events: no step generator is mid-flight, so the
        session's snapshot is consistent (every ingested event is fully
        ingested, every buffered event untouched)."""
        return self._gen is None and self._next is None

    def ready(self):
        """Can :meth:`next_step` produce a step right now (or retire the
        task)?  Push-mode tasks with an open intake and nothing buffered
        are idle, not ready — the scheduler parks them."""
        if self.done:
            return False
        if self._next is not None or self._gen is not None or self.pending:
            return True
        if not self._source_done:
            return self._stream is not None  # pull tasks can refill
        return True  # source done: finish steps (or retirement) remain

    def next_step(self, start_new=True):
        """Stage and return the task's next step, or ``None``.

        ``start_new=False`` never begins a new event — it only advances
        an in-flight one — which is how the scheduler drains every task
        to an event boundary before snapshotting.  ``None`` with
        ``done`` unset means the task is idle (awaiting events)."""
        if self.done:
            return None
        if self._next is not None:
            return self._next
        while True:
            if self._gen is not None:
                step = next(self._gen, None)
                if step is not None:
                    self._next = step
                    return step
                self._gen = None
                if self._finishing:
                    self.done = True
                    return None
                continue
            if not start_new:
                return None
            if self.pending:
                event = self.pending.popleft()
                self.events_started += 1
                self._gen = self.session.ingest_steps(event)
                continue
            if not self._source_done:
                if self._stream is not None:
                    self.refill(1)
                    continue  # pulled one, or the stream just ended
                return None  # push-mode idle: awaiting submit/close
            if self.finish and not self._finishing:
                self._finishing = True
                self._gen = self.session.finish_steps()
                continue
            self.done = True
            return None

    def run_step(self, executor):
        """Run the staged step inline (after giving *executor* its
        prewarm shot) and advance the fairness pass."""
        step = self._next
        if step is None:
            raise DesignError(
                "no step staged for tenant task %r" % (self.name,)
            )
        self._next = None
        executor.prepare(self.session, step)
        step.run()
        self.steps_run += 1
        self.pass_value += self.stride
        return step
