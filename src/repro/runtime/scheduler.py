"""The cooperative tenant scheduler: a fair, priority-aware run-queue.

The service's PR-2 ingest model was one blocking ``drain()`` thread per
tenant: opaque loops the host could neither pace, nor snapshot
mid-stream, nor offload.  The scheduler replaces those loops with an
explicit run-queue of :class:`~repro.runtime.steps.TenantTask` state
machines, advanced one :class:`~repro.runtime.steps.Step` at a time
from a single thread — the stale-synchronous shape: every worker-heavy
effect (cache builds) flows through the shared backplane as portable
derived state, while the scheduler keeps the per-tenant control state
small, explicit, and pausable.

* **Fairness** — stride scheduling: each dispatched step advances the
  task's pass value by ``1/priority``; the runnable task with the
  lowest pass runs next (registration order breaks ties).  A tenant
  with a 10x longer stream cannot starve its neighbors, and a
  priority-2.0 tenant gets twice the steps of a priority-1.0 one.
* **Backpressure / admission control** — per-task ``max_pending``
  bounds the event buffer; push-mode :meth:`submit` refuses events
  beyond it, and pull-mode refills never read ahead of it.
* **Executor seam** — refill batches and heavy steps are announced to
  the executor (see :mod:`repro.runtime.executor`) before running, so
  optimizer-heavy cache builds can move to worker processes
  (:class:`~repro.runtime.ProcessStepExecutor`) or across a runner
  fleet (:class:`~repro.runtime.RemoteStepExecutor`) while every step
  still runs inline, bit-identical to the thread-loop path.
* **Pause-point snapshots** — every ``snapshot_interval`` ingested
  events the scheduler drains in-flight events to their boundaries
  (buffered events untouched) and invokes ``on_snapshot``; the service
  wires this to :meth:`TuningService.snapshot`, which is what lets
  ``serve --snapshot-interval`` persist consistent state without
  stopping ingest.
"""

import time
from collections import OrderedDict

from repro import obs
from repro.runtime.executor import StepExecutor
from repro.runtime.steps import TenantTask, event_sql
from repro.util import DesignError

__all__ = ["Scheduler"]

DEFAULT_LOOKAHEAD = 4


class Scheduler:
    """Drive many tenant tasks to completion, one step at a time.

    ``lookahead`` is how many events per tenant the refill phase
    buffers ahead of ingest — the batch the executor may prewarm
    across worker processes.  ``trace=True`` records every dispatch in
    ``dispatch_log`` as ``(tenant, step kind)`` pairs (the fairness
    tests read it; off by default to keep long runs allocation-free).
    """

    def __init__(self, executor=None, lookahead=None, snapshot_interval=0,
                 on_snapshot=None, trace=False):
        if snapshot_interval < 0:
            raise DesignError(
                "snapshot_interval must be >= 0, got %r"
                % (snapshot_interval,)
            )
        self.executor = executor if executor is not None else StepExecutor()
        self.lookahead = (
            lookahead if lookahead is not None else DEFAULT_LOOKAHEAD
        )
        self.snapshot_interval = snapshot_interval
        self.on_snapshot = on_snapshot
        self.steps = 0
        self.snapshots = 0
        self.last_snapshot_time = None
        self.dispatch_log = [] if trace else None
        self._tasks = OrderedDict()
        self._snapshot_mark = 0
        # Scrape-time mirror of the run-queue shape (queue depths,
        # events started).  Held weakly by the registry: a retired
        # scheduler drops off the collector list with its last ref.
        obs.metrics().add_collector(self._collect_obs)

    # ------------------------------------------------------------------
    # Registration and intake.
    # ------------------------------------------------------------------

    def add(self, name, session, stream=None, finish=True, priority=1.0,
            max_pending=None):
        """Register *session* under *name*.  ``stream`` is the pull-mode
        event source; omit it for push-mode intake via :meth:`submit` +
        :meth:`close_intake`."""
        if name in self._tasks:
            raise DesignError("task %r already scheduled" % (name,))
        task = TenantTask(
            name, session, stream=stream, finish=finish, priority=priority,
            max_pending=max_pending, order=len(self._tasks),
        )
        self._tasks[name] = task
        return task

    def task(self, name):
        try:
            return self._tasks[name]
        except KeyError:
            raise DesignError(
                "unknown task %r (scheduled: %s)"
                % (name, ", ".join(self._tasks) or "none")
            ) from None

    def submit(self, name, event):
        """Push one event to *name*; ``False`` means the tenant's buffer
        is full (admission refused — retry after :meth:`run`)."""
        admitted = self.task(name).submit(event)
        if not admitted:
            obs.metrics().counter(
                "repro_scheduler_backpressure_total",
                "Push-mode events refused by a full tenant buffer",
                labelnames=("tenant",),
            ).labels(tenant=name).inc()
        return admitted

    def close_intake(self, name):
        self.task(name).close_intake()

    @property
    def tasks(self):
        return list(self._tasks.values())

    def queue_depths(self):
        """Buffered-but-not-ingested event count per tenant."""
        return {name: task.queue_depth for name, task in self._tasks.items()}

    def pending_events(self):
        """The buffered events themselves, per tenant — what a snapshot
        must carry so push-mode (non-replayable) events survive."""
        return {
            name: list(task.pending) for name, task in self._tasks.items()
        }

    @property
    def events_started(self):
        return sum(task.events_started for task in self._tasks.values())

    # ------------------------------------------------------------------
    # The run loop.
    # ------------------------------------------------------------------

    def _refill(self):
        """Pull each task's buffer up to ``lookahead`` and hand every
        newly buffered batch to the executor, grouped by evaluator, so
        one prewarm call covers all tenants sharing a backplane."""
        batches = OrderedDict()  # id(evaluator) -> (evaluator, [sql])
        for task in self._tasks.values():
            if task.done:
                continue
            pulled = task.refill(self.lookahead)
            if not pulled:
                continue
            evaluator = task.session.evaluator
            entry = batches.get(id(evaluator))
            if entry is None:
                entry = (evaluator, [])
                batches[id(evaluator)] = entry
            entry[1].extend(event_sql(event) for event in pulled)
        for evaluator, statements in batches.values():
            self.executor.refill(evaluator, statements)

    def _dispatch(self, task):
        with obs.tracer().span("scheduler.step", tenant=task.name) as span:
            t0 = time.perf_counter()
            step = task.run_step(self.executor)
            elapsed = time.perf_counter() - t0
            # The step kind is known only after the task state machine
            # advances; tag it in before the span closes.
            span.set_tag("kind", step.kind)
        registry = obs.metrics()
        registry.counter(
            "repro_scheduler_steps_total",
            "Scheduler steps dispatched",
            labelnames=("kind",),
        ).labels(kind=step.kind).inc()
        registry.histogram(
            "repro_scheduler_step_seconds",
            "Step dispatch latency",
            labelnames=("kind",),
        ).labels(kind=step.kind).observe(elapsed)
        self.steps += 1
        if self.dispatch_log is not None:
            self.dispatch_log.append((task.name, step.kind))
        return step

    def drain_to_boundaries(self):
        """Finish every in-flight event (without starting new ones) so
        all tasks sit at an event boundary — the consistent pause
        point.  Buffered events stay buffered."""
        for task in self._tasks.values():
            while not task.done and not task.at_event_boundary:
                if task.next_step(start_new=False) is None:
                    break
                self._dispatch(task)

    def snapshot_now(self):
        """Drain to boundaries and invoke the snapshot callback."""
        self.drain_to_boundaries()
        self.snapshots += 1
        # Monotonic: snapshot age must survive wall-clock adjustments
        # (NTP slew, DST) — this timestamp is only ever differenced.
        self.last_snapshot_time = time.monotonic()
        self._snapshot_mark = self.events_started
        obs.metrics().counter(
            "repro_scheduler_snapshots_total",
            "Pause-point snapshots taken",
        ).inc()
        if self.on_snapshot is not None:
            self.on_snapshot(self)

    def run(self):
        """Dispatch until every task is done (or all remaining tasks are
        idle push-mode intakes awaiting events).  Returns run stats."""
        while True:
            self._refill()
            runnable = [t for t in self._tasks.values() if t.ready()]
            if not runnable:
                break
            task = min(runnable, key=lambda t: (t.pass_value, t.order))
            if task.next_step() is None:
                continue  # retired (done) or went idle; re-plan
            self._dispatch(task)
            if (
                self.snapshot_interval
                and self.events_started - self._snapshot_mark
                >= self.snapshot_interval
            ):
                self.snapshot_now()
        return self.stats()

    def _collect_obs(self, registry):
        """Scrape-time mirror: per-tenant queue depth plus run-queue
        totals as gauges — exact for the instant of the scrape, zero
        cost on the dispatch path."""
        depth = registry.gauge(
            "repro_scheduler_queue_depth",
            "Buffered-but-not-ingested events per tenant",
            labelnames=("tenant",),
        )
        for name, task in self._tasks.items():
            depth.labels(tenant=name).set(task.queue_depth)
        registry.gauge(
            "repro_scheduler_events_started",
            "Events whose ingest has started",
        ).set(self.events_started)
        if self.last_snapshot_time is not None:
            registry.gauge(
                "repro_scheduler_snapshot_age_seconds",
                "Seconds since the last pause-point snapshot",
            ).set(time.monotonic() - self.last_snapshot_time)

    def stats(self):
        return {
            "steps": self.steps,
            "events": self.events_started,
            "snapshots": self.snapshots,
            "tenants": {
                name: {
                    "steps": task.steps_run,
                    "events": task.events_started,
                    "queue_depth": task.queue_depth,
                    "done": task.done,
                }
                for name, task in self._tasks.items()
            },
        }
