"""The cooperative tenant-scheduler runtime.

Replaces the service's thread-per-tenant ``drain()`` loops with an
explicit, pausable run-queue:

* :mod:`repro.runtime.steps` — :class:`Step` (one resumable unit of
  session work, with prewarm metadata) and :class:`TenantTask` (one
  session as a pull- or push-fed state machine with event-boundary
  pause points);
* :mod:`repro.runtime.scheduler` — :class:`Scheduler`: stride-fair,
  priority-aware dispatch, per-tenant backpressure, pause-point
  snapshots;
* :mod:`repro.runtime.executor` — the executor seam:
  :class:`StepExecutor` (inline), :class:`ProcessStepExecutor`
  (cache builds offloaded to a reusable
  :class:`~repro.evaluation.ProcessPoolBackplane` per backplane), and
  :class:`RemoteStepExecutor` (the same builds fanned across a
  :class:`~repro.net.RunnerNode` fleet with bounded-staleness cache
  leases).

Every step runs inline, so scheduler-driven ingest is bit-identical to
the thread-loop path; executors only move *cache builds* in time and
across processes, which is results-neutral by construction (and pinned
in the test suite).
"""

from repro.runtime.executor import (
    ProcessStepExecutor,
    RemoteStepExecutor,
    StepExecutor,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.steps import Step, TenantTask, event_sql

__all__ = [
    "ProcessStepExecutor",
    "RemoteStepExecutor",
    "Scheduler",
    "Step",
    "StepExecutor",
    "TenantTask",
    "event_sql",
]
