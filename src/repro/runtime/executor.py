"""The scheduler's executor seam: where heavy costing work happens.

Every step ultimately *runs* inline on the scheduler thread — sessions
are not reentrant, and inline execution is what keeps the scheduler
path bit-identical to the thread-loop path.  What an executor controls
is the *preparation* of a step's optimizer-heavy inputs: INUM cache
builds for the statements a step will price.  Cache builds are pure
functions of (bound query, catalog, settings), so building them early,
elsewhere, or not at all never changes a result — only wall-clock time.

* :class:`StepExecutor` — the inline default: no preparation; steps
  build caches on demand exactly like a ``drain()`` loop would.
* :class:`ProcessStepExecutor` — fans cache builds for refill batches
  and heavy steps across a per-evaluator
  :class:`~repro.evaluation.ProcessPoolBackplane`, so the pure-Python
  optimizer planning that dominates ingest leaves the scheduler thread
  (and the GIL) entirely; wire-format entries come back and land in the
  shared pool — each with its columnar kernel rebuilt from the shipped
  plan terms — before the step prices them inline, so epoch-closing
  scoring and refresh sweeps start on prewarmed *compiled* kernels,
  not raw caches.
* :class:`RemoteStepExecutor` — the same seam across machines: cache
  builds fan out to a fleet of :class:`~repro.net.RunnerNode` workers
  through a per-evaluator :class:`~repro.net.RemoteBackplane`, with a
  bounded staleness budget on the runners' leases and graceful
  degradation to inline execution when the fleet dies.  Same
  bit-identical-results contract: only wall-clock time moves.
"""

from repro import obs
from repro.evaluation.process import ProcessPoolBackplane

__all__ = ["StepExecutor", "ProcessStepExecutor", "RemoteStepExecutor"]


class StepExecutor:
    """Inline execution: every cache build happens on demand, in the
    scheduler thread, exactly as in the thread-per-tenant loop."""

    def refill(self, evaluator, statements):
        """Hook called with each newly buffered batch of statements for
        *evaluator*'s backplane.  Inline: nothing to do."""

    def prepare(self, session, step):
        """Hook called immediately before a step runs.  Inline: nothing
        to do — the step builds what it needs."""

    def close(self):
        """Release executor resources (worker pools); idempotent."""


class ProcessStepExecutor(StepExecutor):
    """Offload INUM cache builds to ``multiprocessing`` workers.

    One :class:`ProcessPoolBackplane` is kept per distinct evaluator
    (i.e. per service backplane) and reused across every refill and
    heavy step of the run — the reusable-pool seam.  ``processes`` and
    ``start_method`` are passed through.  Close the executor (or let
    :meth:`TuningService.run_scheduled` close an executor it created)
    to join the workers gracefully.
    """

    def __init__(self, processes=None, start_method=None):
        self.processes = processes
        self.start_method = start_method
        self._backplanes = {}  # id(evaluator) -> ProcessPoolBackplane

    def _backplane(self, evaluator):
        backplane = self._backplanes.get(id(evaluator))
        if backplane is None:
            backplane = ProcessPoolBackplane(
                evaluator,
                processes=self.processes,
                start_method=self.start_method,
            )
            self._backplanes[id(evaluator)] = backplane
        return backplane

    def refill(self, evaluator, statements):
        """Warm the caches for a freshly buffered batch of upcoming
        statements across the worker processes.  Statements already
        resident in the shared pool are filtered out before any task is
        shipped, so a warm pool makes this a near no-op."""
        if statements:
            with obs.tracer().span("executor.refill",
                                   statements=len(statements)):
                self._backplane(evaluator).warm_up(statements)

    def prepare(self, session, step):
        """Heavy steps (drift/interval/final refreshes, epoch-closing
        observes) prewarm the statements they will price — typically the
        session's sliding window, making this a residency check except
        after pool evictions."""
        if step.heavy and step.prewarm:
            with obs.tracer().span("executor.prepare", kind=step.kind,
                                   statements=len(step.prewarm)):
                self._backplane(session.evaluator).warm_up(
                    list(step.prewarm)
                )

    def close(self):
        for backplane in self._backplanes.values():
            backplane.close()
        self._backplanes.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class RemoteStepExecutor(StepExecutor):
    """Offload INUM cache builds to a fleet of runner nodes.

    The network twin of :class:`ProcessStepExecutor`: one
    :class:`~repro.net.RemoteBackplane` per distinct evaluator, reused
    across every refill and heavy step.  ``runners`` is the fleet's
    ``host:port`` list; ``staleness`` is the per-node cache-lease
    budget in epochs (``0`` = exact-replay mode); ``timeout`` /
    ``retries`` shape the per-request failure handling.  A fleet that
    dies entirely degrades each backplane to local execution, so a
    scheduled run always completes with the single-node answer.
    """

    def __init__(self, runners, staleness=0, timeout=30.0, retries=3):
        self.runners = list(runners)
        self.staleness = staleness
        self.timeout = timeout
        self.retries = retries
        self._backplanes = {}  # id(evaluator) -> RemoteBackplane

    def _backplane(self, evaluator):
        backplane = self._backplanes.get(id(evaluator))
        if backplane is None:
            from repro.net import RemoteBackplane

            backplane = RemoteBackplane(
                evaluator,
                self.runners,
                staleness=self.staleness,
                timeout=self.timeout,
                retries=self.retries,
            )
            self._backplanes[id(evaluator)] = backplane
        return backplane

    def refill(self, evaluator, statements):
        """Warm a freshly buffered batch across the runner fleet (the
        parent-resident statements are filtered inside the backplane's
        warm-up, so a warm pool ships nothing)."""
        if statements:
            with obs.tracer().span("executor.refill",
                                   statements=len(statements)):
                self._backplane(evaluator).warm_up(statements)

    def prepare(self, session, step):
        """Prewarm a heavy step's statements across the fleet — the
        same residency-check-or-build contract as the process
        executor's prepare."""
        if step.heavy and step.prewarm:
            with obs.tracer().span("executor.prepare", kind=step.kind,
                                   statements=len(step.prewarm)):
                self._backplane(session.evaluator).warm_up(
                    list(step.prewarm)
                )

    def close(self):
        for backplane in self._backplanes.values():
            backplane.close()
        self._backplanes.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
