"""Scenario 2 — fully automatic tuning with a materialization schedule.

The tool recommends indexes (CoPhy's solver formulation) and partitions
(AutoPart) under a storage constraint, shows the interaction graph of the
suggested indexes, and produces an interaction-aware materialization
schedule compared against the naive benefit order.

Run:  python examples/auto_tuning_sdss.py
"""

from repro import Designer, sdss_catalog, sdss_workload
from repro.cophy import CoPhyAdvisor


def main():
    catalog = sdss_catalog(scale=0.1)
    workload = sdss_workload(n_queries=25, seed=7)
    designer = Designer(catalog)

    table_pages = sum(t.pages for t in catalog.tables)
    budget = int(table_pages * 0.35)
    print("Database: %d pages across %d tables; storage budget %d pages.\n"
          % (table_pages, len(catalog.tables), budget))

    result = designer.recommend(workload, storage_budget_pages=budget)
    print(result.to_text())

    # The quality-vs-time dial the paper highlights: exact solver vs the
    # greedy heuristic commercial tools use.
    print("\n=== Solver comparison at this budget ===")
    advisor = CoPhyAdvisor(catalog, cost_model=designer.cost_model)
    for solver in ("milp", "greedy", "lp-rounding"):
        rec = advisor.recommend(workload, budget, solver=solver)
        print("  %-12s -> cost %10.1f (%.1f%% better), %d indexes, %.2fs"
              % (solver, rec.predicted_workload_cost, rec.improvement_pct,
                 len(rec.indexes), rec.solve_seconds))


if __name__ == "__main__":
    main()
