"""The multi-tenant online tuning service.

Four tenants stream drifting workloads against one TuningService — two
astronomy tenants replaying a shared SDSS dashboard, two decision-support
tenants on a TPC-H mix.  Each tenant gets its own COLT epoch loop, drift
detection at phase boundaries, and periodic full-advisor design
refreshes; all of them price through shared, sharded INUM cache pools,
so plan caches built for one tenant are hits for its neighbors.

Run:  python examples/multi_tenant_service.py
"""

from repro import TuningService
from repro.workloads import sdss_catalog, tpch_catalog
from repro.workloads.drift import default_phases, drifting_stream, tpch_phases

PHASE_LENGTH = 20


def main():
    service = TuningService(shards=4, warm_threads=4)
    service.add_backplane("sdss", sdss_catalog(scale=0.05))
    service.add_backplane("tpch", tpch_catalog(scale=0.05))

    # Tenants within a group replay the same dashboard stream (the
    # common multi-tenant shape: many users, one set of saved queries).
    tenants = {
        "astro-1": ("sdss", default_phases, 11),
        "astro-2": ("sdss", default_phases, 11),
        "dss-1": ("tpch", tpch_phases, 7),
        "dss-2": ("tpch", tpch_phases, 7),
    }
    for name, (key, __, ___) in tenants.items():
        service.add_tenant(name, key, recommend_every=30, window=30)

    # Concurrent warm-up: pre-build each distinct query's INUM cache
    # once per backplane, fanned out across threads.
    for key, phases_fn, seed in {(k, p, s) for k, p, s in tenants.values()}:
        calls = service.warm_up(
            key,
            [sql for __, sql in
             drifting_stream(phases_fn(PHASE_LENGTH), seed=seed)],
        )
        print("warmed %s backplane: %d optimizer calls" % (key, calls))

    # Scheduled ingest: every tenant advances as resumable steps on the
    # cooperative scheduler — fair and priority-aware (astro-1 is the
    # premium tenant here, so it gets twice the dispatch weight while
    # the others stay starvation-free).  Priorities reorder work in
    # time; per-tenant results are identical under any schedule.
    streams = {
        name: drifting_stream(phases_fn(PHASE_LENGTH), seed=seed)
        for name, (key, phases_fn, seed) in tenants.items()
    }
    service.run_scheduled(streams, priorities={"astro-1": 2.0})

    print()
    print(service.status_text())

    print()
    for name in tenants:
        session = service.tenant(name)
        last = session.recommendations[-1]
        print(
            "%s final design review: %s (%.1f%% better than untuned)"
            % (name, ",".join(last.indexes) or "(none)",
               last.improvement_pct)
        )

    # The service's whole point: tenants share builds.  Every hit in the
    # pool stats is a cache one tenant's traffic built and another (or a
    # later probe) reused without an optimizer call.
    print()
    for key in ("sdss", "tpch"):
        plane = service.backplane(key)
        stats = plane.pool.stats
        print(
            "%s pool: %d entries, %d builds, %d cross-probe hits "
            "(%.0f%% hit rate)"
            % (key, len(plane.pool), stats.optimizer_calls, stats.hits,
               100.0 * stats.hit_rate)
        )


if __name__ == "__main__":
    main()
