"""Portability: the same designer tunes a TPC-H-style workload untouched.

The paper stresses the tool "can be ported to any relational DBMS which
offers a query optimizer, a way to extract and create statistics, and
control over join operations"; within this library, the analogous claim
is that nothing in the designer stack is SDSS-specific.

Run:  python examples/tpch_portability.py
"""

from repro import Designer, tpch_catalog, tpch_workload


def main():
    catalog = tpch_catalog(scale=0.05)
    workload = tpch_workload(n_queries=15, seed=7)
    designer = Designer(catalog)

    print("TPC-H-lite: %d tables, %d total pages"
          % (len(catalog.tables), sum(t.pages for t in catalog.tables)))
    budget = int(sum(t.pages for t in catalog.tables) * 0.3)

    result = designer.recommend(workload, storage_budget_pages=budget)
    print(result.to_text())

    # Per-query drill-down for the three biggest winners.
    evaluation = designer.evaluate_design(
        workload, indexes=result.index_recommendation.indexes
    )
    winners = sorted(
        evaluation.report.per_query, key=lambda b: -b.benefit
    )[:3]
    print("\n=== Biggest winners ===")
    for qb in winners:
        print("  %.0f -> %.0f (%.1f%%)  %s"
              % (qb.base_cost, qb.new_cost, qb.improvement_pct, qb.sql[:70]))


if __name__ == "__main__":
    main()
