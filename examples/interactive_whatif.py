"""Scenario 1 — the DBA explores what-if designs interactively.

The user proposes indexes and partitions; the tool evaluates them without
building anything, visualizes index interactions (Figure 2), and shows the
queries rewritten for the proposed partitions.

Run:  python examples/interactive_whatif.py
"""

from repro import (
    Designer,
    Index,
    VerticalFragment,
    VerticalLayout,
    sdss_catalog,
    sdss_workload,
)


def main():
    catalog = sdss_catalog(scale=0.1)
    workload = sdss_workload(n_queries=15, seed=42)
    designer = Designer(catalog)

    # The DBA's hand-picked candidates: two overlapping positional indexes
    # (they interact — one subsumes the other), a photometric composite,
    # and the join key of the spectroscopic table.
    candidate_indexes = [
        Index("photoobj", ("ra",)),
        Index("photoobj", ("ra", "dec")),
        Index("photoobj", ("type", "rmag")),
        Index("specobj", ("bestobjid",)),
    ]

    # ... and a hand-drawn vertical partitioning of the wide photo table.
    hot = ("objid", "ra", "dec", "type", "rmag", "gmag")
    cold = tuple(
        c for c in catalog.table("photoobj").column_names if c not in hot
    )
    layout = VerticalLayout(
        "photoobj",
        (
            VerticalFragment("photoobj", hot),
            VerticalFragment("photoobj", cold),
        ),
    )

    evaluation = designer.evaluate_design(
        workload, indexes=candidate_indexes, layouts=[layout]
    )
    print(evaluation.to_text())

    # The Figure-2 graph as Graphviz DOT, with the demo's dynamic edge
    # filter (show only the 3 strongest interactions).
    print("\n=== Interaction graph (DOT, top 3 edges) ===")
    print(evaluation.interaction_graph.to_dot(max_edges=3))

    # What-if join control: how would the workload behave without hash
    # joins (e.g. on an engine lacking them)?
    no_hash = designer.session.with_join_methods(enable_hashjoin=False)
    base = designer.session.workload_cost(workload)
    without = no_hash.workload_cost(workload)
    print("\nWhat-if join control: workload cost %.0f with hash joins, "
          "%.0f without (%.1f%% difference)."
          % (base, without, 100.0 * (without - base) / base))


if __name__ == "__main__":
    main()
