"""AutoPart in isolation: partitioning a wide scientific table (Figure 3).

Shows the full AutoPart pipeline — primary fragments, pairwise merging,
replication within a budget, horizontal pruning — plus query rewriting
onto the fragment tables.

Run:  python examples/partition_advisor.py
"""

from repro import AutoPartAdvisor, sdss_catalog, sdss_workload
from repro.autopart import rewrite_for_layout


def main():
    catalog = sdss_catalog(scale=0.1)
    workload = sdss_workload(n_queries=20, seed=42)
    advisor = AutoPartAdvisor(catalog)

    table = catalog.table("photoobj")
    print("photoobj: %d columns, %d rows, %d pages\n"
          % (len(table.columns), table.row_count, table.pages))

    for budget in (0, table.pages // 4, table.pages):
        rec = advisor.recommend(workload, replication_budget_pages=budget)
        print("replication budget %6d pages -> %5.1f%% improvement "
              "(%d layouts, %d horizontal)"
              % (budget, rec.improvement_pct,
                 len(rec.configuration.layouts),
                 len(rec.configuration.horizontals)))

    print()
    rec = advisor.recommend(workload, replication_budget_pages=table.pages // 4)
    print(rec.to_text())

    print("\n=== Merge/replication decisions ===")
    for line in rec.merge_log:
        print("  " + line)

    print("\n=== Rewritten queries (first 3 that change) ===")
    shown = 0
    for sql, __ in workload:
        rewritten = rewrite_for_layout(sql, catalog, rec.layouts)
        if rewritten != sql and shown < 3:
            print("  original : %s" % sql)
            print("  rewritten: %s\n" % rewritten)
            shown += 1


if __name__ == "__main__":
    main()
