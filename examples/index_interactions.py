"""Deep dive: index interactions and the Index Benefit Graph.

Shows the two interaction tools of the demo (§3.5) plus the machinery
behind them: the degree-of-interaction graph (Figure 2), the stable
partitions, the Index Benefit Graph that makes subset costs cheap, and
the materialization schedules that exploit all of it.

Run:  python examples/index_interactions.py
"""

from repro import Index, InteractionAnalyzer, InumCostModel, sdss_catalog, sdss_workload
from repro.interaction import schedule_greedy, schedule_naive, schedule_optimal


def main():
    catalog = sdss_catalog(scale=0.1)
    workload = sdss_workload(n_queries=20, seed=42)
    inum = InumCostModel(catalog)

    # A candidate set with all three interaction flavours:
    #  - subsumption: (ra) vs (ra, dec)
    #  - covering overlap: (z) vs (z) INCLUDE (bestobjid)
    #  - synergy: (dec) + (rmag) combine in BitmapAnd scans
    candidates = [
        Index("photoobj", ("ra",)),
        Index("photoobj", ("ra", "dec")),
        Index("photoobj", ("dec",)),
        Index("photoobj", ("rmag",)),
        Index("specobj", ("z",)),
        Index("specobj", ("z",), include=("bestobjid",)),
    ]

    analyzer = InteractionAnalyzer(inum, workload, method="ibg")
    graph = analyzer.interaction_graph(candidates)
    print(graph.to_text())

    ibg = analyzer.ibg(candidates)
    print("\nIBG: %d nodes cover all 2^%d = %d subsets (%d oracle calls)"
          % (ibg.size, len(candidates), 2 ** len(candidates),
             ibg.build_evaluations))
    print("cost(empty)=%.0f  cost(all)=%.0f"
          % (ibg.cost(()), ibg.cost(candidates)))

    print("\nStable partitions (threshold 0.02):")
    for part in analyzer.stable_partition(candidates, threshold=0.02):
        print("  {%s}" % ", ".join(ix.name for ix in part))

    print("\nMaterialization schedules:")
    for scheduler in (schedule_naive, schedule_greedy, schedule_optimal):
        schedule = scheduler(candidates, analyzer.cost, catalog)
        print("  %-20s area=%.0f  order: %s"
              % (schedule.method, schedule.area,
                 " -> ".join(ix.name for ix in schedule.order[:3]) + " ..."))


if __name__ == "__main__":
    main()
