"""Tuning a mixed read/write workload: indexes are not free.

Every index speeds some reads and taxes every write to its table.  This
walkthrough shows the advisor internalizing that tradeoff: as the update
storm grows, indexes on the updated columns disappear from the
recommendation while purely-read-serving indexes survive.

Run:  python examples/mixed_workload_tuning.py
"""

from repro import CoPhyAdvisor, CostService, InumCostModel, sdss_catalog, sdss_workload


def main():
    catalog = sdss_catalog(scale=0.1)
    inum = InumCostModel(catalog)
    advisor = CoPhyAdvisor(catalog, cost_model=inum)
    budget = sum(t.pages for t in catalog.tables)

    reads = list(sdss_workload(n_queries=15, seed=42))
    reads += [
        ("SELECT objid FROM photoobj WHERE status = 17", 1.0),
        ("SELECT objid, flags FROM photoobj WHERE flags = 123456", 1.0),
    ]
    storm = [
        ("UPDATE photoobj SET status = 1, flags = 2 WHERE objid = 77", 0.0),
    ]

    print("What a single write statement costs under different designs:")
    update_sql = "UPDATE photoobj SET status = 1, flags = 2 WHERE objid = 77"
    bare = CostService(catalog)
    print("  no indexes:            %8.2f" % bare.cost(update_sql))
    from repro import Configuration, Index
    heavy = Configuration.of(
        Index("photoobj", ("status",)),
        Index("photoobj", ("flags",)),
        Index("photoobj", ("objid",)),
    )
    loaded = CostService(heavy.apply(catalog))
    print("  3 indexes on photoobj: %8.2f  (objid index speeds locate,"
          % loaded.cost(update_sql))
    print("                                   status/flags indexes add maintenance)")

    print("\nAdvisor recommendations as the update storm grows:")
    for weight in (0.0, 5_000.0, 50_000.0):
        workload = reads + [(storm[0][0], weight)] if weight else list(reads)
        rec = advisor.recommend(workload, budget)
        hit = [
            ix.name for ix in rec.indexes
            if {"status", "flags"} & set(ix.all_columns)
        ]
        print("  weight %8.0f -> %d indexes, %d on updated columns %s"
              % (weight, len(rec.indexes), len(hit), hit))


if __name__ == "__main__":
    main()
