"""Scenario 3 — continuous tuning of a drifting workload.

A three-phase astronomy stream (positional -> photometric -> spectral)
runs against the database.  COLT monitors it, raises alerts when the
design goes stale, and (in auto-adopt mode) pays the build cost to switch.
The output compares against leaving the database untuned.

Run:  python examples/online_tuning.py
"""

from repro import ColtSettings, Designer, sdss_catalog
from repro.whatif import WhatIfSession
from repro.workloads.drift import default_phases, drifting_stream


def main():
    catalog = sdss_catalog(scale=0.1)
    designer = Designer(catalog)
    phases = default_phases(length=100)

    settings = ColtSettings(
        epoch_length=25,
        space_budget_pages=int(sum(t.pages for t in catalog.tables) * 0.5),
        whatif_budget=40,
    )
    report = designer.continuous(drifting_stream(phases, seed=11), settings)
    print(report.to_text())

    session = WhatIfSession(catalog)
    untuned = sum(
        session.cost(sql) for __, sql in drifting_stream(phases, seed=11)
    )
    saved = 100.0 * (untuned - report.total_cost) / untuned
    print("\nUntuned stream cost: %.1f" % untuned)
    print("COLT (incl. %.1f build cost): %.1f  -> %.1f%% saved"
          % (report.build_cost, report.total_cost, saved))

    # Manual mode: the DBA reviews alerts instead of auto-adopting
    # ("whether this configuration would be adopted depends on the DBA").
    manual = designer.continuous_tuner(
        ColtSettings(epoch_length=25, auto_adopt=False)
    )
    for __, sql in drifting_stream(default_phases(length=30), seed=11):
        manual.observe(sql)
    manual.flush()
    if manual.pending_alert is not None:
        print("\nPending alert for the DBA:")
        print(manual.pending_alert.describe())


if __name__ == "__main__":
    main()
