"""Quickstart: tune an SDSS-like database in five steps.

Run:  python examples/quickstart.py
"""

from repro import Designer, sdss_catalog, sdss_workload


def main():
    # 1. A database: the SDSS-like scientific catalog (statistics-driven,
    #    no rows need materializing — exactly what a designer consumes).
    catalog = sdss_catalog(scale=0.1)
    print("=== Database ===")
    print(catalog.describe())

    # 2. A workload: 20 astronomy queries (cone searches, magnitude cuts,
    #    photo-spec joins, aggregates).
    workload = sdss_workload(n_queries=20, seed=42)
    print("\n=== Workload ===")
    print(workload.describe(limit=5))

    # 3. The designer: every component of the paper behind one facade.
    designer = Designer(catalog)

    # 4. Ask for a design within a storage budget (pages of 8 KiB).
    budget = int(sum(t.pages for t in catalog.tables) * 0.4)
    result = designer.recommend(workload, storage_budget_pages=budget)
    print("\n=== Recommendation (budget %d pages) ===" % budget)
    print(result.to_text())

    # 5. Materialize it ("physically create the suggested indexes").
    new_catalog, build_cost = designer.materialize(result.combined_configuration)
    print("\nMaterialized %d indexes at build cost %.0f." % (
        len(result.index_recommendation.indexes), build_cost))
    print("New design size: %d pages." % new_catalog.design_size_pages())


if __name__ == "__main__":
    main()
